// The pipelined read engine: byte-for-byte equivalence with serial reads,
// overlapping fetches across benefactors, batch GETs inside the prefetch
// window, failover on mid-read benefactor death, dead-replica skipping, the
// read-ahead byte budget, and in-flight-window backpressure.
#include <gtest/gtest.h>

#include <algorithm>

#include "client/read_session.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

constexpr std::size_t kChunk = 1024;

CheckpointName Name(std::uint64_t t) { return CheckpointName{"app", "n1", t}; }

class ReadPipelineTest : public ::testing::Test {
 protected:
  ReadPipelineTest() {
    ClusterOptions options;
    options.benefactor_count = 6;
    options.client.stripe_width = 4;
    options.client.chunk_size = kChunk;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  ClientOptions ReaderOptions(int read_ahead) {
    ClientOptions o = cluster_->client().options();
    o.read_ahead_chunks = read_ahead;
    return o;
  }

  Bytes Write(std::uint64_t t, std::size_t size) {
    Bytes data = rng_.RandomBytes(size);
    EXPECT_TRUE(cluster_->client().WriteFile(Name(t), data).ok());
    return data;
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{1234};
};

TEST_F(ReadPipelineTest, PipelinedEqualsSerialAcrossCorpus) {
  // Seed corpus: empty-ish, sub-chunk, chunk-aligned, off-by-one, large.
  const std::size_t sizes[] = {1,          kChunk / 2,     kChunk,
                               kChunk + 1, 10 * kChunk + 500,
                               37 * kChunk + 7};
  std::uint64_t t = 1;
  for (std::size_t size : sizes) {
    Bytes data = Write(t, size);
    for (int read_ahead : {0, 2, 8}) {
      auto reader = cluster_->MakeClient(ReaderOptions(read_ahead));
      auto got = reader->ReadFile(Name(t));
      ASSERT_TRUE(got.ok()) << "size " << size << " ra " << read_ahead << ": "
                            << got.status();
      EXPECT_EQ(got.value(), data) << "size " << size << " ra " << read_ahead;
    }
    ++t;
  }
}

TEST_F(ReadPipelineTest, ReadAllOverlapsFetchesAcrossBenefactors) {
  Bytes data = Write(1, 24 * kChunk);
  auto reader = cluster_->MakeClient(ReaderOptions(3));
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  // Attribute the transport's overlap watermark to this read alone.
  cluster_->transport().ResetInflightPeak();
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);

  // The engine kept several chunk fetches in flight at once, and the
  // transport saw them simultaneously (the window spans distinct nodes —
  // stripe width 4 > window 4 spread round-robin).
  EXPECT_GE(session.value()->stats().inflight_peak, 3u);
  EXPECT_GE(cluster_->transport().inflight_peak(), 2u);
}

TEST_F(ReadPipelineTest, PrefetchWindowCoalescesBatchGets) {
  // Stripe 2: a window of 6 chunks lands 3 chunks per node, so the engine
  // must coalesce them into GetChunkBatch ops.
  ClusterOptions options;
  options.benefactor_count = 2;
  options.client.stripe_width = 2;
  options.client.chunk_size = kChunk;
  StdchkCluster narrow(options);
  Bytes data = rng_.RandomBytes(16 * kChunk);
  ASSERT_TRUE(narrow.client().WriteFile(Name(1), data).ok());

  ClientOptions reader_options = narrow.client().options();
  reader_options.read_ahead_chunks = 5;
  auto reader = narrow.MakeClient(reader_options);
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);
  EXPECT_GT(session.value()->stats().batch_gets, 0u);
  // Batching shrank the RPC bill below one per chunk.
  EXPECT_LT(session.value()->stats().batch_gets +
                session.value()->stats().single_gets,
            16u);
}

TEST_F(ReadPipelineTest, FailsOverWhenBenefactorDiesMidRead) {
  ClientOptions writer_options = cluster_->client().options();
  writer_options.semantics = WriteSemantics::kPessimistic;
  writer_options.replication_target = 2;
  auto writer = cluster_->MakeClient(writer_options);
  Bytes data = rng_.RandomBytes(20 * kChunk);
  ASSERT_TRUE(writer->WriteFile(Name(1), data).ok());

  auto reader = cluster_->MakeClient(ReaderOptions(2));
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  // Read the first chunk, then kill a node that holds data. Every chunk
  // has a second replica, so the rest of the read must fail over.
  Bytes head(kChunk);
  auto n = session.value()->ReadAt(0, MutableByteSpan(head));
  ASSERT_TRUE(n.ok());
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    if (cluster_->benefactor(i).BytesUsed() > 0) {
      cluster_->benefactor(i).Crash();
      break;
    }
  }

  Bytes rest(data.size() - kChunk);
  std::uint64_t offset = kChunk;
  while (offset < data.size()) {
    auto r = session.value()->ReadAt(
        offset, MutableByteSpan(rest.data() + (offset - kChunk),
                                rest.size() - (offset - kChunk)));
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_GT(r.value(), 0u);
    offset += r.value();
  }
  EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(), data.begin() + kChunk));
  // The dead node was hit at least once, then skipped without paying
  // further doomed RPCs.
  const ReadStats& stats = session.value()->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.dead_replica_skips, 1u);
}

TEST_F(ReadPipelineTest, TransientDropDoesNotStrandAChunk) {
  // Single-replica chunks whose fetch fails once must stay readable: the
  // per-chunk blacklist is a failover hint, not a verdict. Cut every link,
  // observe the failure, heal the links — the same session recovers.
  Bytes data = Write(1, 8 * kChunk);
  auto reader = cluster_->MakeClient(ReaderOptions(2));
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->transport().SetUnreachable(cluster_->benefactor(i).id(), true);
  }
  Bytes buf(kChunk);
  EXPECT_FALSE(session.value()->ReadAt(0, MutableByteSpan(buf)).ok());

  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->transport().SetUnreachable(cluster_->benefactor(i).id(), false);
  }
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all.value(), data);
}

TEST_F(ReadPipelineTest, CacheBudgetEvictsConsumedChunks) {
  Bytes data = Write(1, 20 * kChunk);
  ClientOptions o = ReaderOptions(2);
  o.read_cache_budget_bytes = 3 * kChunk;
  auto reader = cluster_->MakeClient(o);
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);

  const ReadStats& stats = session.value()->stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  // Window chunks are never evicted, so the peak may exceed the budget by
  // at most one in-flight window.
  EXPECT_LE(stats.cache_bytes_peak, o.read_cache_budget_bytes + 3 * kChunk);
  // Every chunk still fetched exactly once: eviction only sheds consumed
  // chunks on this sequential scan.
  EXPECT_EQ(stats.chunks_fetched, 20u);
}

TEST_F(ReadPipelineTest, UnboundedBudgetNeverEvicts) {
  Bytes data = Write(1, 12 * kChunk);
  ClientOptions o = ReaderOptions(2);
  o.read_cache_budget_bytes = 0;
  auto reader = cluster_->MakeClient(o);
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);
  EXPECT_EQ(session.value()->stats().cache_evictions, 0u);
  EXPECT_EQ(session.value()->stats().cache_bytes_peak, 12 * kChunk);
}

TEST_F(ReadPipelineTest, WindowBoundsInflightBackpressure) {
  Bytes data = Write(1, 30 * kChunk);
  auto reader = cluster_->MakeClient(ReaderOptions(3));
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  cluster_->transport().ResetInflightPeak();
  auto all = session.value()->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), data);
  // Demand chunk + 3 read-ahead: never more than 4 chunk fetches in
  // flight, from the engine's view and the transport's.
  EXPECT_LE(session.value()->stats().inflight_peak, 4u);
  EXPECT_LE(cluster_->transport().inflight_peak(), 4u);
}

TEST_F(ReadPipelineTest, RandomAccessStaysCorrectUnderPipelining) {
  Bytes data = Write(1, 25 * kChunk + 123);
  auto reader = cluster_->MakeClient(ReaderOptions(4));
  auto session = reader->OpenFile(Name(1));
  ASSERT_TRUE(session.ok());

  Rng jump(99);
  for (int i = 0; i < 40; ++i) {
    std::uint64_t offset = jump.NextBelow(data.size());
    std::size_t want = 1 + static_cast<std::size_t>(jump.NextBelow(4000));
    Bytes buf(want);
    auto n = session.value()->ReadAt(offset, MutableByteSpan(buf));
    ASSERT_TRUE(n.ok());
    std::size_t expected =
        std::min<std::size_t>(want, data.size() - offset);
    ASSERT_EQ(n.value(), expected);
    EXPECT_TRUE(std::equal(
        buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(expected),
        data.begin() + static_cast<std::ptrdiff_t>(offset)));
  }
}

TEST_F(ReadPipelineTest, PipelinedReadBeatsSerialUnderModeledLatency) {
  // With a 1 ms per-op link on every node, a serial reader pays the
  // latency once per chunk; the pipelined window overlaps them across the
  // stripe. This is the functional engine measured on the modeled clock —
  // the same arithmetic bench_read_pipeline reports at LAN scale.
  Bytes data = Write(1, 24 * kChunk);
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->transport().SetLinkModel(cluster_->benefactor(i).id(),
                                       sim::LinkModel{Milliseconds(1), 0.0});
  }

  auto serial = cluster_->MakeClient(ReaderOptions(0));
  SimTime t0 = cluster_->transport().now();
  auto serial_read = serial->ReadFile(Name(1));
  ASSERT_TRUE(serial_read.ok());
  SimTime serial_elapsed = cluster_->transport().now() - t0;

  auto pipelined = cluster_->MakeClient(ReaderOptions(7));
  SimTime t1 = cluster_->transport().now();
  auto pipelined_read = pipelined->ReadFile(Name(1));
  ASSERT_TRUE(pipelined_read.ok());
  SimTime pipelined_elapsed = cluster_->transport().now() - t1;

  EXPECT_EQ(serial_read.value(), data);
  EXPECT_EQ(pipelined_read.value(), data);
  EXPECT_EQ(serial_elapsed, Milliseconds(24));
  // The window spans the stripe (4 nodes): ≥ 3x faster than serial.
  EXPECT_LE(pipelined_elapsed * 3, serial_elapsed);
}

}  // namespace
}  // namespace stdchk
