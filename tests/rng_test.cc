#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace stdchk {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(10);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NextExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(RngTest, FillCoversAllBytes) {
  Rng rng(12);
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 17u, 1000u}) {
    Bytes buf(size, 0xAA);
    rng.Fill(MutableByteSpan(buf));
    if (size >= 100) {
      // A long run should not remain at the fill marker everywhere.
      EXPECT_NE(std::count(buf.begin(), buf.end(), 0xAA),
                static_cast<std::ptrdiff_t>(size));
    }
  }
}

TEST(RngTest, RandomBytesDeterministic) {
  Rng a(13), b(13);
  EXPECT_EQ(a.RandomBytes(64), b.RandomBytes(64));
}

TEST(RngTest, WorksWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  Rng rng(14);
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace stdchk
