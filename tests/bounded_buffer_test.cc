#include "sim/bounded_buffer.h"

#include <gtest/gtest.h>

#include <vector>

namespace stdchk::sim {
namespace {

TEST(BoundedBufferTest, ImmediateAcquireWhenSpace) {
  BoundedBuffer buf(100);
  bool ran = false;
  buf.Acquire(60, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(buf.used(), 60u);
  EXPECT_EQ(buf.free_bytes(), 40u);
}

TEST(BoundedBufferTest, BlocksWhenFull) {
  BoundedBuffer buf(100);
  buf.Acquire(80, [] {});
  bool ran = false;
  buf.Acquire(40, [&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(buf.waiters(), 1u);

  buf.Release(30);  // 50 used, 40 fits now
  EXPECT_TRUE(ran);
  EXPECT_EQ(buf.used(), 90u);
  EXPECT_EQ(buf.waiters(), 0u);
}

TEST(BoundedBufferTest, WaitersWakeInFifoOrder) {
  BoundedBuffer buf(100);
  buf.Acquire(100, [] {});
  std::vector<int> order;
  buf.Acquire(50, [&] { order.push_back(1); });
  buf.Acquire(10, [&] { order.push_back(2); });
  buf.Acquire(40, [&] { order.push_back(3); });

  buf.Release(100);
  // 50 + 10 + 40 == 100: all fit, in order.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(buf.used(), 100u);
}

TEST(BoundedBufferTest, HeadOfLineBlocking) {
  // A small waiter behind a large one does not jump the queue (the
  // application's writes are strictly ordered).
  BoundedBuffer buf(100);
  buf.Acquire(90, [] {});
  std::vector<int> order;
  buf.Acquire(50, [&] { order.push_back(1); });  // cannot fit yet
  buf.Acquire(5, [&] { order.push_back(2); });   // could fit, but must wait

  buf.Release(10);  // 80 used; 50 still cannot fit
  EXPECT_TRUE(order.empty());

  buf.Release(40);  // 40 used; both fit now
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(BoundedBufferTest, UnboundedCapacityNeverBlocks) {
  BoundedBuffer buf(0);  // unbounded
  bool a = false, b = false;
  buf.Acquire(1'000'000'000ull, [&] { a = true; });
  buf.Acquire(5'000'000'000ull, [&] { b = true; });
  EXPECT_TRUE(a);
  EXPECT_TRUE(b);
}

TEST(BoundedBufferTest, ReleaseAllDrains) {
  BoundedBuffer buf(10);
  int ran = 0;
  for (int i = 0; i < 5; ++i) buf.Acquire(10, [&] { ++ran; });
  EXPECT_EQ(ran, 1);
  for (int i = 0; i < 4; ++i) buf.Release(10);
  EXPECT_EQ(ran, 5);
  EXPECT_EQ(buf.used(), 10u);
}

TEST(BoundedBufferTest, ExactFit) {
  BoundedBuffer buf(64);
  bool ran = false;
  buf.Acquire(64, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(buf.free_bytes(), 0u);
}

}  // namespace
}  // namespace stdchk::sim
