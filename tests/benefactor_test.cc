#include "benefactor/benefactor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace stdchk {
namespace {

class BenefactorTest : public ::testing::Test {
 protected:
  BenefactorTest()
      : manager_(&clock_),
        benefactor_("desk0", MakeMemoryChunkStore(), /*capacity=*/4096) {}

  VirtualClock clock_;
  MetadataManager manager_;
  Benefactor benefactor_;
};

TEST_F(BenefactorTest, JoinPoolAssignsId) {
  EXPECT_EQ(benefactor_.id(), kInvalidNode);
  ASSERT_TRUE(benefactor_.JoinPool(manager_).ok());
  EXPECT_NE(benefactor_.id(), kInvalidNode);
  EXPECT_TRUE(manager_.registry().IsOnline(benefactor_.id()));
}

TEST_F(BenefactorTest, PutVerifiesContentAddress) {
  Bytes data = ToBytes("checkpoint chunk data");
  ChunkId right = ChunkId::For(data);
  ChunkId wrong = ChunkId::For(ToBytes("other"));
  EXPECT_TRUE(benefactor_.PutChunk(right, data).ok());
  EXPECT_EQ(benefactor_.PutChunk(wrong, data).code(), StatusCode::kDataLoss);
}

TEST_F(BenefactorTest, GetVerifiesIntegrity) {
  Bytes data = ToBytes("some bytes");
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(benefactor_.PutChunk(id, data).ok());
  auto got = benefactor_.GetChunk(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), data);
}

TEST_F(BenefactorTest, CapacityEnforced) {
  Rng rng(1);
  Bytes big = rng.RandomBytes(3000);
  Bytes more = rng.RandomBytes(2000);
  ASSERT_TRUE(benefactor_.PutChunk(ChunkId::For(big), big).ok());
  EXPECT_EQ(benefactor_.PutChunk(ChunkId::For(more), more).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(benefactor_.FreeBytes(), 4096u - 3000u);
}

TEST_F(BenefactorTest, RePutOfExistingChunkBypassesCapacityCheck) {
  Rng rng(2);
  Bytes data = rng.RandomBytes(4000);
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(benefactor_.PutChunk(id, data).ok());
  // Same chunk again: no additional space needed.
  EXPECT_TRUE(benefactor_.PutChunk(id, data).ok());
  EXPECT_EQ(benefactor_.ChunkCount(), 1u);
}

TEST_F(BenefactorTest, CrashRejectsOperationsButKeepsData) {
  Bytes data = ToBytes("persist me");
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(benefactor_.PutChunk(id, data).ok());

  benefactor_.Crash();
  EXPECT_FALSE(benefactor_.online());
  EXPECT_EQ(benefactor_.PutChunk(id, data).code(), StatusCode::kUnavailable);
  EXPECT_EQ(benefactor_.GetChunk(id).status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(benefactor_.HasChunk(id));  // unavailable while down

  benefactor_.Restart();
  EXPECT_TRUE(benefactor_.HasChunk(id));
  EXPECT_TRUE(benefactor_.GetChunk(id).ok());
}

TEST_F(BenefactorTest, WipeDestroysData) {
  Bytes data = ToBytes("gone");
  ChunkId id = ChunkId::For(data);
  ASSERT_TRUE(benefactor_.PutChunk(id, data).ok());
  benefactor_.Wipe();
  benefactor_.Restart();
  EXPECT_FALSE(benefactor_.HasChunk(id));
  EXPECT_EQ(benefactor_.BytesUsed(), 0u);
}

TEST_F(BenefactorTest, HeartbeatRequiresJoin) {
  EXPECT_EQ(benefactor_.SendHeartbeat(manager_).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(benefactor_.JoinPool(manager_).ok());
  EXPECT_TRUE(benefactor_.SendHeartbeat(manager_).ok());
}

TEST_F(BenefactorTest, RunGcDeletesWhatManagerSays) {
  ASSERT_TRUE(benefactor_.JoinPool(manager_).ok());
  Bytes orphan = ToBytes("orphan chunk");
  ASSERT_TRUE(benefactor_.PutChunk(ChunkId::For(orphan), orphan).ok());

  auto reclaimed = benefactor_.RunGc(manager_);
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(reclaimed.value(), 1u);
  EXPECT_EQ(benefactor_.ChunkCount(), 0u);
}

TEST_F(BenefactorTest, StashAndOfferRecoveredVersions) {
  ASSERT_TRUE(benefactor_.JoinPool(manager_).ok());
  Benefactor peer("desk1", MakeMemoryChunkStore(), 4096);
  ASSERT_TRUE(peer.JoinPool(manager_).ok());

  VersionRecord record;
  record.name = CheckpointName{"app", "n", 1};
  ChunkLocation loc;
  loc.id = ChunkId::For(ToBytes("c"));
  loc.size = 1;
  loc.replicas = {benefactor_.id()};
  record.chunk_map.chunks.push_back(loc);
  record.size = 1;

  ASSERT_TRUE(benefactor_.StashChunkMap(record, /*stripe_width=*/2).ok());
  ASSERT_TRUE(peer.StashChunkMap(record, 2).ok());
  EXPECT_EQ(benefactor_.stashed_count(), 1u);

  // First offer: 1 of 2 endorsements — version not yet committed, and the
  // benefactor keeps the stash until it is.
  ASSERT_TRUE(benefactor_.OfferStashedVersions(manager_).ok());
  EXPECT_FALSE(manager_.GetVersion(record.name).ok());

  ASSERT_TRUE(peer.OfferStashedVersions(manager_).ok());
  EXPECT_TRUE(manager_.GetVersion(record.name).ok());
}

// Receive-side verify fan-out: batch admission re-hashes unstamped chunks
// across the shared HashPool. Admission must be byte-identical for 1 vs N
// workers — same statuses, same stored state — for clean and corrupt
// batches alike.
TEST(BenefactorVerifyFanOutTest, AdmissionIdenticalForOneAndManyWorkers) {
  Rng rng(41);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 32; ++i) payloads.push_back(rng.RandomBytes(1024));

  auto make_batch = [&payloads]() {
    std::vector<ChunkPut> batch;
    for (const Bytes& data : payloads) {
      // BufferSlice::Copy drops any stamp: every chunk pays the re-hash,
      // like a batch that crossed a re-materializing boundary.
      batch.push_back(ChunkPut{ChunkId::For(data), BufferSlice::Copy(data)});
    }
    return batch;
  };

  Benefactor serial("serial", MakeMemoryChunkStore(), 1_GiB);
  serial.set_verify_workers(1);
  Benefactor fanned("fanned", MakeMemoryChunkStore(), 1_GiB);
  fanned.set_verify_workers(8);

  Status s = serial.PutChunkBatch(make_batch());
  Status f = fanned.PutChunkBatch(make_batch());
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_TRUE(f.ok()) << f;

  ASSERT_EQ(serial.ChunkCount(), payloads.size());
  ASSERT_EQ(fanned.ChunkCount(), payloads.size());
  EXPECT_EQ(serial.BytesUsed(), fanned.BytesUsed());
  for (const Bytes& data : payloads) {
    ChunkId id = ChunkId::For(data);
    auto a = serial.GetChunk(id);
    auto b = fanned.GetChunk(id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

TEST(BenefactorVerifyFanOutTest, CorruptBatchRejectedIdenticallyAtAnyWidth) {
  Rng rng(42);
  std::vector<Bytes> payloads;
  for (int i = 0; i < 16; ++i) payloads.push_back(rng.RandomBytes(512));

  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    Benefactor node("donor", MakeMemoryChunkStore(), 1_GiB);
    node.set_verify_workers(workers);

    std::vector<ChunkPut> batch;
    for (const Bytes& data : payloads) {
      batch.push_back(ChunkPut{ChunkId::For(data), BufferSlice::Copy(data)});
    }
    // Mispair one chunk's content address, mid-batch.
    batch[7].id = ChunkId::For(ToBytes("not those bytes"));

    EXPECT_EQ(node.PutChunkBatch(batch).code(), StatusCode::kDataLoss);
    // Whole-batch admission: nothing landed.
    EXPECT_EQ(node.ChunkCount(), 0u);
    EXPECT_EQ(node.BytesUsed(), 0u);
  }
}

TEST_F(BenefactorTest, StashWhileOfflineFails) {
  benefactor_.Crash();
  VersionRecord record;
  record.name = CheckpointName{"a", "n", 1};
  EXPECT_EQ(benefactor_.StashChunkMap(record, 1).code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace stdchk
