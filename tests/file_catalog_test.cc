#include "manager/file_catalog.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace stdchk {
namespace {

ChunkId MakeChunkId(int i) {
  std::string s = "chunk-" + std::to_string(i);
  return ChunkId{Sha1(AsBytes(s))};
}

ChunkLocation Loc(int chunk, std::uint64_t offset, std::uint32_t size,
                  std::vector<NodeId> replicas) {
  return ChunkLocation{MakeChunkId(chunk), offset, size, std::move(replicas)};
}

VersionRecord MakeVersion(const std::string& app, const std::string& node,
                          std::uint64_t timestep,
                          std::vector<ChunkLocation> chunks) {
  VersionRecord record;
  record.name = CheckpointName{app, node, timestep};
  record.chunk_map.chunks = std::move(chunks);
  record.size = record.chunk_map.FileSize();
  record.replication_target = 1;
  return record;
}

class FileCatalogTest : public ::testing::Test {
 protected:
  FileCatalogTest() : catalog_(&clock_) {}
  VirtualClock clock_;
  FileCatalog catalog_;
};

TEST_F(FileCatalogTest, CommitAndGet) {
  auto v = MakeVersion("app", "n1", 1, {Loc(1, 0, 100, {1}), Loc(2, 100, 50, {2})});
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  auto got = catalog_.GetVersion(v.name);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().size, 150u);
  EXPECT_EQ(got.value().chunk_map.chunks.size(), 2u);
}

TEST_F(FileCatalogTest, VersionsAreImmutable) {
  auto v = MakeVersion("app", "n1", 1, {Loc(1, 0, 10, {1})});
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  EXPECT_EQ(catalog_.CommitVersion(v).code(), StatusCode::kAlreadyExists);
}

TEST_F(FileCatalogTest, CommitRejectsReplicalessChunks) {
  auto v = MakeVersion("app", "n1", 1, {Loc(1, 0, 10, {})});
  EXPECT_EQ(catalog_.CommitVersion(v).code(), StatusCode::kInvalidArgument);
}

TEST_F(FileCatalogTest, GetMissingVersion) {
  EXPECT_EQ(catalog_.GetVersion(CheckpointName{"a", "n", 1}).status().code(),
            StatusCode::kNotFound);
  auto v = MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1})});
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  EXPECT_EQ(catalog_.GetVersion(CheckpointName{"a", "n", 2}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_.GetVersion(CheckpointName{"a", "m", 1}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileCatalogTest, GetLatestPicksHighestTimestep) {
  for (std::uint64_t t : {3u, 1u, 7u, 5u}) {
    ASSERT_TRUE(catalog_
                    .CommitVersion(MakeVersion("app", "n1", t,
                                               {Loc(static_cast<int>(t), 0, 10, {1})}))
                    .ok());
  }
  auto latest = catalog_.GetLatest("app", "n1");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().name.timestep, 7u);
}

TEST_F(FileCatalogTest, GetLatestIsPerNode) {
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("app", "n1", 9, {Loc(1, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("app", "n2", 4, {Loc(2, 0, 10, {1})})).ok());
  auto latest = catalog_.GetLatest("app", "n2");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().name.timestep, 4u);
  EXPECT_FALSE(catalog_.GetLatest("app", "n3").ok());
}

TEST_F(FileCatalogTest, ListVersionsAndApps) {
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n1", 1, {Loc(1, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n1", 2, {Loc(2, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("b", "n1", 1, {Loc(3, 0, 10, {1})})).ok());
  EXPECT_EQ(catalog_.ListVersions("a").size(), 2u);
  EXPECT_EQ(catalog_.ListApps(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(FileCatalogTest, DeleteVersionUnrefsChunks) {
  auto v = MakeVersion("app", "n1", 1, {Loc(1, 0, 10, {1})});
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  EXPECT_TRUE(catalog_.IsChunkLive(MakeChunkId(1)));
  ASSERT_TRUE(catalog_.DeleteVersion(v.name).ok());
  EXPECT_FALSE(catalog_.IsChunkLive(MakeChunkId(1)));
  EXPECT_EQ(catalog_.DeleteVersion(v.name).code(), StatusCode::kNotFound);
}

TEST_F(FileCatalogTest, SharedChunksSurviveUntilLastReference) {
  // Two versions share chunk 7 (copy-on-write dedup).
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("app", "n1", 1, {Loc(7, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("app", "n1", 2, {Loc(7, 0, 10, {1}), Loc(8, 10, 10, {2})})).ok());

  ASSERT_TRUE(catalog_.DeleteVersion(CheckpointName{"app", "n1", 1}).ok());
  EXPECT_TRUE(catalog_.IsChunkLive(MakeChunkId(7)));  // still referenced by T2
  ASSERT_TRUE(catalog_.DeleteVersion(CheckpointName{"app", "n1", 2}).ok());
  EXPECT_FALSE(catalog_.IsChunkLive(MakeChunkId(7)));
  EXPECT_FALSE(catalog_.IsChunkLive(MakeChunkId(8)));
}

TEST_F(FileCatalogTest, DeleteAppRemovesEverything) {
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n1", 1, {Loc(1, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n2", 1, {Loc(2, 0, 10, {1})})).ok());
  auto n = catalog_.DeleteApp("a");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_TRUE(catalog_.ListApps().empty());
  EXPECT_FALSE(catalog_.IsChunkLive(MakeChunkId(1)));
}

TEST_F(FileCatalogTest, KnownChunksVector) {
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1})})).ok());
  auto known = catalog_.KnownChunks({MakeChunkId(1), MakeChunkId(2)});
  ASSERT_EQ(known.size(), 2u);
  EXPECT_TRUE(known[0]);
  EXPECT_FALSE(known[1]);
}

TEST_F(FileCatalogTest, ReplicaTracking) {
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1, 2})})).ok());
  catalog_.AddReplica(MakeChunkId(1), 3);
  auto replicas = catalog_.ChunkReplicas(MakeChunkId(1));
  EXPECT_EQ(replicas.size(), 3u);

  // GetVersion folds in the refreshed replica list.
  auto got = catalog_.GetVersion(CheckpointName{"a", "n", 1});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().chunk_map.chunks[0].replicas.size(), 3u);
}

TEST_F(FileCatalogTest, RemoveNodeReplicasReportsDataLoss) {
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1}), Loc(2, 10, 10, {1, 2})})).ok());
  std::vector<ChunkId> lost = catalog_.RemoveNodeReplicas(1);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], MakeChunkId(1));  // chunk 2 still has node 2
}

TEST_F(FileCatalogTest, FindUnderReplicated) {
  VersionRecord v = MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1})});
  v.replication_target = 3;
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());

  auto under = catalog_.FindUnderReplicated({1, 2, 3});
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(under[0].have, 1);
  EXPECT_EQ(under[0].want, 3);

  catalog_.AddReplica(MakeChunkId(1), 2);
  catalog_.AddReplica(MakeChunkId(1), 3);
  EXPECT_TRUE(catalog_.FindUnderReplicated({1, 2, 3}).empty());
}

TEST_F(FileCatalogTest, UnderReplicationCountsOnlyOnlineNodes) {
  VersionRecord v = MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1, 2})});
  v.replication_target = 2;
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  EXPECT_TRUE(catalog_.FindUnderReplicated({1, 2}).empty());
  // Node 2 offline: only one live replica.
  auto under = catalog_.FindUnderReplicated({1});
  ASSERT_EQ(under.size(), 1u);
  EXPECT_EQ(under[0].have, 1);
}

TEST_F(FileCatalogTest, ChunksWithNoLiveReplicaAreNotRepairCandidates) {
  VersionRecord v = MakeVersion("a", "n", 1, {Loc(1, 0, 10, {5})});
  v.replication_target = 2;
  ASSERT_TRUE(catalog_.CommitVersion(v).ok());
  // Node 5 offline: zero sources — nothing the scheduler can do.
  EXPECT_TRUE(catalog_.FindUnderReplicated({1, 2}).empty());
}

TEST_F(FileCatalogTest, RetentionNoIntervention) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kNoIntervention;
  catalog_.SetFolderPolicy("a", policy);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(catalog_.CommitVersion(
        MakeVersion("a", "n", t, {Loc(static_cast<int>(t), 0, 10, {1})})).ok());
  }
  EXPECT_TRUE(catalog_.ApplyRetention().empty());
  EXPECT_EQ(catalog_.ListVersions("a").size(), 5u);
}

TEST_F(FileCatalogTest, RetentionAutomatedReplaceKeepsNewest) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  policy.keep_last = 1;
  catalog_.SetFolderPolicy("a", policy);
  for (std::uint64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(catalog_.CommitVersion(
        MakeVersion("a", "n", t, {Loc(static_cast<int>(t), 0, 10, {1})})).ok());
  }
  std::vector<CheckpointName> removed = catalog_.ApplyRetention();
  EXPECT_EQ(removed.size(), 3u);
  auto remaining = catalog_.ListVersions("a");
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].timestep, 4u);
  // Old chunks are dead now.
  EXPECT_FALSE(catalog_.IsChunkLive(MakeChunkId(1)));
  EXPECT_TRUE(catalog_.IsChunkLive(MakeChunkId(4)));
}

TEST_F(FileCatalogTest, RetentionReplaceIsPerNodeLineage) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  catalog_.SetFolderPolicy("a", policy);
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n1", 1, {Loc(1, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n1", 2, {Loc(2, 0, 10, {1})})).ok());
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n2", 1, {Loc(3, 0, 10, {1})})).ok());
  catalog_.ApplyRetention();
  auto remaining = catalog_.ListVersions("a");
  // n1 keeps T2; n2 keeps its only T1.
  EXPECT_EQ(remaining.size(), 2u);
}

TEST_F(FileCatalogTest, RetentionReplaceKeepLastN) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  policy.keep_last = 2;
  catalog_.SetFolderPolicy("a", policy);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(catalog_.CommitVersion(
        MakeVersion("a", "n", t, {Loc(static_cast<int>(t), 0, 10, {1})})).ok());
  }
  catalog_.ApplyRetention();
  auto remaining = catalog_.ListVersions("a");
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining[0].timestep, 4u);
  EXPECT_EQ(remaining[1].timestep, 5u);
}

TEST_F(FileCatalogTest, RetentionAutomatedPurgeByAge) {
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedPurge;
  policy.purge_age_us = 10'000'000;  // 10 s
  catalog_.SetFolderPolicy("a", policy);

  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1})})).ok());
  clock_.AdvanceSeconds(6);
  ASSERT_TRUE(catalog_.CommitVersion(MakeVersion("a", "n", 2, {Loc(2, 0, 10, {1})})).ok());
  clock_.AdvanceSeconds(6);  // T1 is 12 s old, T2 is 6 s old

  std::vector<CheckpointName> removed = catalog_.ApplyRetention();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].timestep, 1u);

  clock_.AdvanceSeconds(6);
  removed = catalog_.ApplyRetention();
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].timestep, 2u);
  EXPECT_TRUE(catalog_.ListVersions("a").empty());
}

TEST_F(FileCatalogTest, LiveChunksOnNode) {
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("a", "n", 1, {Loc(1, 0, 10, {1, 2}), Loc(2, 10, 10, {2})})).ok());
  auto on1 = catalog_.LiveChunksOn(1);
  auto on2 = catalog_.LiveChunksOn(2);
  EXPECT_EQ(on1.size(), 1u);
  EXPECT_EQ(on2.size(), 2u);
}

TEST_F(FileCatalogTest, TotalsAccounting) {
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("a", "n", 1, {Loc(1, 0, 100, {1})})).ok());
  // Second version shares chunk 1, adds chunk 2.
  ASSERT_TRUE(catalog_.CommitVersion(
      MakeVersion("a", "n", 2, {Loc(1, 0, 100, {1}), Loc(2, 100, 50, {1})})).ok());
  EXPECT_EQ(catalog_.TotalVersions(), 2u);
  EXPECT_EQ(catalog_.TotalLogicalBytes(), 250u);
  EXPECT_EQ(catalog_.TotalUniqueBytes(), 150u);  // dedup saves 100
}

}  // namespace
}  // namespace stdchk
