// Content-defined (CbCH) dedup on the write path — variable-size chunk
// maps, shift-resilient cross-version sharing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

CheckpointName Name(std::uint64_t t) { return CheckpointName{"vm", "n0", t}; }

class CbchWriteTest : public ::testing::Test {
 protected:
  CbchWriteTest() {
    ClusterOptions options;
    options.benefactor_count = 5;
    options.client.stripe_width = 3;
    cluster_ = std::make_unique<StdchkCluster>(options);
  }

  std::unique_ptr<StdchkCluster> cluster_;
  Rng rng_{61};
  ContentBasedChunker chunker_{CbchParams{20, 11, 1}};  // ~2 KB chunks
};

TEST_F(CbchWriteTest, FirstVersionUploadsEverything) {
  Bytes image = rng_.RandomBytes(256 * 1024);
  auto plan = cluster_->client().WriteFileDeduped(Name(1), image, chunker_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->total_bytes, image.size());
  EXPECT_EQ(plan->novel_bytes, image.size());
  ASSERT_FALSE(plan->chunks.empty());
  std::uint64_t offset = 0;
  for (const PlannedChunk& pc : plan->chunks) {
    EXPECT_TRUE(pc.novel);
    EXPECT_EQ(pc.span.offset, offset);
    offset += pc.span.size;
  }
  EXPECT_EQ(offset, image.size());

  auto read_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), image);
}

TEST_F(CbchWriteTest, ShiftedVersionTransfersOnlyTheInsertion) {
  Bytes v1 = rng_.RandomBytes(256 * 1024);
  ASSERT_TRUE(cluster_->client().WriteFileDeduped(Name(1), v1, chunker_).ok());

  // v2 = v1 with 1000 bytes inserted near the front — the FsCH killer.
  Bytes v2;
  Append(v2, ByteSpan(v1.data(), 10'000));
  Bytes inserted = rng_.RandomBytes(1000);
  Append(v2, inserted);
  Append(v2, ByteSpan(v1.data() + 10'000, v1.size() - 10'000));

  auto plan = cluster_->client().WriteFileDeduped(Name(2), v2, chunker_);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->dedup_ratio(), 0.9);  // nearly everything reused
  EXPECT_LT(plan->novel_bytes, 20'000u);
  // The per-chunk plan marks the reused spans.
  std::size_t reused_chunks = 0;
  for (const PlannedChunk& pc : plan->chunks) reused_chunks += !pc.novel;
  EXPECT_GT(reused_chunks, plan->chunks.size() / 2);

  auto read_back = cluster_->client().ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), v2);
  // The unmodified original remains readable as well.
  auto v1_back = cluster_->client().ReadFile(Name(1));
  ASSERT_TRUE(v1_back.ok());
  EXPECT_EQ(v1_back.value(), v1);
}

TEST_F(CbchWriteTest, IdenticalVersionTransfersNothing) {
  Bytes image = rng_.RandomBytes(128 * 1024);
  ASSERT_TRUE(
      cluster_->client().WriteFileDeduped(Name(1), image, chunker_).ok());
  std::uint64_t moved_before = cluster_->transport().bytes_moved();
  auto plan = cluster_->client().WriteFileDeduped(Name(2), image, chunker_);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->novel_bytes, 0u);
  EXPECT_EQ(cluster_->transport().bytes_moved(), moved_before);
}

TEST_F(CbchWriteTest, VariableSizeChunkMapReadsAtArbitraryOffsets) {
  Bytes image = rng_.RandomBytes(200 * 1024 + 77);
  ASSERT_TRUE(
      cluster_->client().WriteFileDeduped(Name(1), image, chunker_).ok());
  auto session = cluster_->client().OpenFile(Name(1));
  ASSERT_TRUE(session.ok());
  for (std::uint64_t offset : {0ull, 777ull, 99'999ull, 200ull * 1024}) {
    Bytes buf(1234);
    auto n = session.value()->ReadAt(offset, MutableByteSpan(buf));
    ASSERT_TRUE(n.ok());
    std::size_t expected = std::min<std::size_t>(1234, image.size() - offset);
    ASSERT_EQ(n.value(), expected);
    EXPECT_TRUE(std::equal(buf.begin(),
                           buf.begin() + static_cast<std::ptrdiff_t>(expected),
                           image.begin() + static_cast<std::ptrdiff_t>(offset)));
  }
}

TEST_F(CbchWriteTest, DuplicateVersionRejected) {
  Bytes image = rng_.RandomBytes(64 * 1024);
  ASSERT_TRUE(
      cluster_->client().WriteFileDeduped(Name(1), image, chunker_).ok());
  auto again = cluster_->client().WriteFileDeduped(Name(1), image, chunker_);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(CbchWriteTest, FailsCleanlyWhenPoolIsDown) {
  for (std::size_t i = 0; i < cluster_->benefactor_count(); ++i) {
    cluster_->benefactor(i).Crash();
  }
  Bytes image = rng_.RandomBytes(64 * 1024);
  auto plan = cluster_->client().WriteFileDeduped(Name(1), image, chunker_);
  EXPECT_FALSE(plan.ok());
  EXPECT_FALSE(cluster_->client().ReadFile(Name(1)).ok());
}

TEST_F(CbchWriteTest, SharedChunksRefcountedAcrossDeletion) {
  Bytes image = rng_.RandomBytes(128 * 1024);
  ASSERT_TRUE(
      cluster_->client().WriteFileDeduped(Name(1), image, chunker_).ok());
  ASSERT_TRUE(
      cluster_->client().WriteFileDeduped(Name(2), image, chunker_).ok());
  ASSERT_TRUE(cluster_->client().Delete(Name(1)).ok());
  cluster_->Settle();
  auto read_back = cluster_->client().ReadFile(Name(2));
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), image);
}

}  // namespace
}  // namespace stdchk
