#include "workload/xen_canonicalize.h"

#include <gtest/gtest.h>

#include "chkpt/similarity.h"
#include "workload/trace_generators.h"

namespace stdchk {
namespace {

XenTraceOptions SmallXen(std::uint64_t seed) {
  XenTraceOptions options;
  options.pages = 512;
  options.seed = seed;
  return options;
}

XenImageLayout LayoutFor(const XenTraceOptions& options) {
  XenImageLayout layout;
  layout.page_bytes = options.page_bytes;
  layout.header_bytes = options.header_bytes;
  layout.pfn_bytes = 8;
  return layout;
}

TEST(XenCanonicalizeTest, RoundTripIsByteExact) {
  XenTraceOptions options = SmallXen(1);
  auto trace = MakeXenLikeTrace(options);
  Bytes image = trace->Next();

  auto canonical = CanonicalizeXenImage(image, LayoutFor(options));
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  auto rebuilt = ReassembleXenImage(canonical.value());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), image);
}

TEST(XenCanonicalizeTest, CanonicalPagesAreOrderIndependent) {
  // Two saves of the same VM state differ only in record order and
  // volatile flags; the canonical page dump must be identical.
  XenTraceOptions options = SmallXen(2);
  options.dirty_fraction = 0.0;  // identical memory across saves
  auto trace = MakeXenLikeTrace(options);
  Bytes save1 = trace->Next();
  Bytes save2 = trace->Next();
  ASSERT_NE(save1, save2);  // raw images differ (ordering + flags)

  auto c1 = CanonicalizeXenImage(save1, LayoutFor(options));
  auto c2 = CanonicalizeXenImage(save2, LayoutFor(options));
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.value().pages, c2.value().pages);
}

TEST(XenCanonicalizeTest, RestoresCompareByHashSimilarity) {
  // The headline: raw Xen images show near-zero similarity; canonicalized
  // ones behave like BLCR dumps.
  XenTraceOptions options = SmallXen(3);
  options.dirty_fraction = 0.10;

  auto raw_trace = MakeXenLikeTrace(options);
  FixedSizeChunker chunker(64 * 1024);
  SimilarityTracker raw_tracker(&chunker);
  auto canon_trace = MakeXenLikeTrace(options);
  FixedSizeChunker chunker2(64 * 1024);
  SimilarityTracker canon_tracker(&chunker2);

  for (int i = 0; i < 5; ++i) {
    raw_tracker.AddImage(raw_trace->Next());
    auto canonical =
        CanonicalizeXenImage(canon_trace->Next(), LayoutFor(options));
    ASSERT_TRUE(canonical.ok());
    canon_tracker.AddImage(canonical.value().pages);
  }

  EXPECT_LT(raw_tracker.AverageSimilarity(), 0.15);
  EXPECT_GT(canon_tracker.AverageSimilarity(), 0.6);
}

TEST(XenCanonicalizeTest, SidecarIsSmall) {
  XenTraceOptions options = SmallXen(4);
  auto trace = MakeXenLikeTrace(options);
  Bytes image = trace->Next();
  auto canonical = CanonicalizeXenImage(image, LayoutFor(options));
  ASSERT_TRUE(canonical.ok());
  std::size_t sidecar = canonical->original_order.size() * 8 +
                        canonical->volatile_headers.size();
  EXPECT_LT(static_cast<double>(sidecar), 0.01 * static_cast<double>(image.size()));
}

TEST(XenCanonicalizeTest, RejectsMalformedImages) {
  XenImageLayout layout;
  Bytes odd(4100);  // not a whole record
  EXPECT_FALSE(CanonicalizeXenImage(odd, layout).ok());

  XenImageLayout bad_pfn = layout;
  bad_pfn.pfn_bytes = 0;
  EXPECT_FALSE(CanonicalizeXenImage(Bytes(), bad_pfn).ok());
  bad_pfn.pfn_bytes = 20;
  EXPECT_FALSE(CanonicalizeXenImage(Bytes(), bad_pfn).ok());
}

TEST(XenCanonicalizeTest, RejectsDuplicatePfns) {
  XenImageLayout layout;
  layout.page_bytes = 16;
  layout.header_bytes = 16;
  Bytes image(2 * (16 + 16), 0);  // two records, both pfn 0
  EXPECT_FALSE(CanonicalizeXenImage(image, layout).ok());
}

TEST(XenCanonicalizeTest, EmptyImage) {
  XenImageLayout layout;
  auto canonical = CanonicalizeXenImage(Bytes(), layout);
  ASSERT_TRUE(canonical.ok());
  EXPECT_TRUE(canonical->pages.empty());
  auto rebuilt = ReassembleXenImage(canonical.value());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->empty());
}

}  // namespace
}  // namespace stdchk
