// Thread-safety of the shared control plane: multiple application threads
// checkpoint through their own client proxies while the background driver
// pumps replication/GC/retention from another thread.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/background_driver.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

TEST(ConcurrencyTest, ParallelWritersWithBackgroundDriver) {
  ClusterOptions options;
  options.benefactor_count = 8;
  options.capacity_per_node = 1_GiB;
  options.client.stripe_width = 3;
  options.client.chunk_size = 4096;
  StdchkCluster cluster(options);

  constexpr int kThreads = 4;
  constexpr int kFilesPerThread = 8;
  std::atomic<int> failures{0};

  {
    BackgroundDriver driver(&cluster, /*period_seconds=*/0.002);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&cluster, &failures, t] {
        auto client = cluster.MakeClient(cluster.client().options());
        Rng rng(static_cast<std::uint64_t>(t) + 1);
        for (int f = 0; f < kFilesPerThread; ++f) {
          CheckpointName name{"par", "w" + std::to_string(t),
                              static_cast<std::uint64_t>(f + 1)};
          Bytes data = rng.RandomBytes(16 * 1024 + rng.NextBelow(16 * 1024));
          auto outcome = client->WriteFile(name, data);
          if (!outcome.ok()) {
            ++failures;
            continue;
          }
          auto read_back = client->ReadFile(name);
          if (!read_back.ok() || read_back.value() != data) ++failures;
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cluster.manager().catalog().TotalVersions(),
            static_cast<std::size_t>(kThreads * kFilesPerThread));
}

TEST(ConcurrencyTest, ReadersAndWritersShareTheGrid) {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.stripe_width = 2;
  options.client.chunk_size = 4096;
  StdchkCluster cluster(options);
  Rng rng(9);

  // Seed with committed data.
  Bytes seed_data = rng.RandomBytes(64 * 1024);
  ASSERT_TRUE(cluster.client()
                  .WriteFile(CheckpointName{"shared", "seed", 1}, seed_data)
                  .ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    auto client = cluster.MakeClient(cluster.client().options());
    while (!stop.load()) {
      auto read_back = client->ReadFile(CheckpointName{"shared", "seed", 1});
      if (!read_back.ok() || read_back.value() != seed_data) ++failures;
    }
  });

  {
    BackgroundDriver driver(&cluster, 0.002);
    auto writer = cluster.MakeClient(cluster.client().options());
    Rng wrng(10);
    for (int f = 1; f <= 20; ++f) {
      Bytes data = wrng.RandomBytes(32 * 1024);
      auto outcome = writer->WriteFile(
          CheckpointName{"shared", "w", static_cast<std::uint64_t>(f)}, data);
      if (!outcome.ok()) ++failures;
    }
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ManagerSnapshotWhileClientsRun) {
  ClusterOptions options;
  options.benefactor_count = 4;
  options.client.stripe_width = 2;
  options.client.chunk_size = 4096;
  StdchkCluster cluster(options);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    auto client = cluster.MakeClient(cluster.client().options());
    Rng rng(11);
    std::uint64_t t = 1;
    while (!stop.load()) {
      auto outcome = client->WriteFile(CheckpointName{"snap", "w", t++},
                                       rng.RandomBytes(8 * 1024));
      if (!outcome.ok()) ++failures;
    }
  });

  // Take snapshots concurrently with the writes; each must parse back.
  for (int i = 0; i < 20; ++i) {
    Bytes snapshot = cluster.manager().SaveSnapshot();
    VirtualClock clock;
    MetadataManager standby(&clock);
    if (!standby.LoadSnapshot(snapshot).ok()) ++failures;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace stdchk
