// Extension experiment: 100 Mbps benefactors. §V.B notes (deferring the
// data to the technical report): "when benefactors are connected by a
// lower link bandwidth (100Mbps), a larger stripe width is required to
// saturate a client" — this bench regenerates that experiment, echoing
// FreeLoader's 88 MB/s from ten 100 Mbps donors.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Extension",
                     "Stripe scaling with 100 Mbps benefactors (§V.B / tech "
                     "report)");

  PlatformModel platform = PaperLanTestbed();
  platform.benefactor_nic_mbps = 11.9;  // 100 Mbps payload rate

  bench::PrintRow("%-8s %10s %10s", "stripe", "OAB", "ASB");
  for (int width : {1, 2, 4, 8, 10, 12}) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = 1_GiB;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    for (int s = 0; s < width; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, width, config);
    bench::PrintRow("%-8d %10.1f %10.1f", width, r.oab_mbps, r.asb_mbps);
    bench::JsonLine("bench_ext_100mbps")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("oab_mb_s", r.oab_mbps)
        .Num("asb_mb_s", r.asb_mbps)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "shape to check: each 100 Mbps donor contributes ~11 MB/s, so the "
      "curve keeps climbing well past stripe 2 (unlike the GigE case) and "
      "approaches the client NIC only around ten benefactors — consistent "
      "with FreeLoader's 88 MB/s from a stripe of ten 100 Mbps nodes.");
  return 0;
}
