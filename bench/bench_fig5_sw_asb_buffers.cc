// Regenerates Figure 5: sliding-window ASB for different stripe widths and
// write-buffer sizes.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Figure 5",
                     "Sliding-window ASB vs stripe width and buffer size");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t buffers[] = {32_MiB, 64_MiB, 128_MiB, 256_MiB, 512_MiB};

  bench::PrintRow("%-8s %10s %10s %10s %10s %10s", "stripe", "32MB", "64MB",
                  "128MB", "256MB", "512MB");
  for (int width : {1, 2, 4, 8}) {
    double values[5];
    int i = 0;
    for (std::uint64_t buffer : buffers) {
      PipelineConfig config;
      config.protocol = ProtocolModel::kSW;
      config.file_bytes = 1_GiB;
      config.chunk_size = 1_MiB;
      config.buffer_bytes = buffer;
      for (int s = 0; s < width; ++s) config.stripe.push_back(s);
      values[i++] = RunSingleWrite(platform, width, config).asb_mbps;
    }
    bench::PrintRow("%-8d %10.1f %10.1f %10.1f %10.1f %10.1f", width,
                    values[0], values[1], values[2], values[3], values[4]);
    bench::JsonLine("bench_fig5_sw_asb_buffers")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("asb_mb_s_32mb", values[0])
        .Num("asb_mb_s_512mb", values[4])
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "paper shape: ASB is set by the transfer pipeline, not the buffer — "
      "near-flat across buffer sizes, benefactor-disk-bound at stripe 1, "
      "NIC-bound from stripe 2 on.");
  return 0;
}
