// Extension experiment: the functional pipelined read engine measured on
// the modeled clock. The paper requires "a reasonable read performance ...
// to support timely job restarts" (§III.B) and §IV.E attributes it to
// read-ahead over the stripe. Unlike bench_ext_read_restart (a pure DES
// model), this bench drives the *real* client read path — ReadSession over
// the async transport with per-node links configured from the paper's
// platform model — and checks the pipelined result byte-for-byte against
// the serial one.
#include "bench_util.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "perf/platform_model.h"

using namespace stdchk;

namespace {

constexpr std::size_t kFileBytes = 64_MiB;

struct ReadRun {
  double mbps = 0.0;
  bool identical = false;
};

ReadRun TimedRead(StdchkCluster& cluster, const CheckpointName& name,
                  const Bytes& expected, int read_ahead) {
  ClientOptions options = cluster.client().options();
  options.read_ahead_chunks = read_ahead;
  auto reader = cluster.MakeClient(options);
  SimTime t0 = cluster.transport().now();
  auto got = reader->ReadFile(name);
  SimTime elapsed = cluster.transport().now() - t0;
  if (!got.ok()) return {};
  return ReadRun{ThroughputMBps(static_cast<double>(expected.size()), elapsed),
                 got.value() == expected};
}

}  // namespace

int main() {
  bench::PrintHeader("Extension",
                     "Pipelined read engine: restart-read throughput of the "
                     "functional client under modeled LAN links");

  perf::PlatformModel platform = perf::PaperLanTestbed();
  sim::LinkModel link = perf::BenefactorLink(platform);

  bench::PrintRow("per-node link: %.0f us per op + %.1f MB/s",
                  static_cast<double>(link.latency) / 1000.0,
                  link.bandwidth_mbps);
  bench::PrintRow("%-10s %12s %12s %12s %12s %10s", "stripe", "serial",
                  "window 2", "window 4", "window 8", "identical");

  Rng rng(2024);
  bool all_identical = true;
  for (int width : {1, 2, 4, 8}) {
    ClusterOptions options;
    options.benefactor_count = width;
    options.capacity_per_node = 4_GiB;
    options.client.stripe_width = width;
    options.client.chunk_size = 1_MiB;
    StdchkCluster cluster(options);

    CheckpointName name{"bench", "n0", 1};
    Bytes data = rng.RandomBytes(kFileBytes);
    if (!cluster.client().WriteFile(name, data).ok()) {
      bench::PrintRow("%-10d write failed", width);
      all_identical = false;
      continue;
    }
    // Links go live after the write so the measurement isolates the read.
    for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
      cluster.transport().SetLinkModel(cluster.benefactor(i).id(), link);
    }

    ReadRun serial = TimedRead(cluster, name, data, 0);
    ReadRun w2 = TimedRead(cluster, name, data, 1);
    ReadRun w4 = TimedRead(cluster, name, data, 3);
    ReadRun w8 = TimedRead(cluster, name, data, 7);
    bool identical =
        serial.identical && w2.identical && w4.identical && w8.identical;
    all_identical = all_identical && identical;
    bench::PrintRow("%-10d %12.1f %12.1f %12.1f %12.1f %10s", width,
                    serial.mbps, w2.mbps, w4.mbps, w8.mbps,
                    identical ? "yes" : "NO");
    bench::JsonLine("bench_read_pipeline")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("serial_mb_s", serial.mbps)
        .Num("window2_mb_s", w2.mbps)
        .Num("window4_mb_s", w4.mbps)
        .Num("window8_mb_s", w8.mbps)
        .Int("identical", identical ? 1 : 0)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintRow("baselines: local disk read %.1f MB/s, NFS %.1f MB/s",
                  platform.local_disk_read_mbps, platform.nfs_mbps);
  bench::PrintNote(
      "shape to check: the serial reader pays latency + transfer once per "
      "chunk regardless of stripe width; the pipelined window overlaps "
      "fetches across benefactors (and coalesces same-node window chunks "
      "into batch GETs once the window exceeds the stripe), so throughput "
      "scales with min(window, stripe) up to the per-node link rate — the "
      "striped restart read beats local disk, matching §III.B/§IV.E. "
      "Results must stay byte-for-byte identical to the serial read.");
  return all_identical ? 0 : 1;
}
