// End-to-end chunk data path: write + read wall-clock MB/s on 64 MiB
// checkpoint images, FsCH and CbCH, through the full functional stack
// (WriteSession -> Transport -> Benefactor -> ChunkStore and back through
// the pipelined read engine).
//
// Two configurations run side by side:
//   current   — the zero-copy path: ref-counted BufferSlice payloads shared
//               from planner staging through to store insertion, hardware
//               SHA-1 when the CPU has it.
//   baseline  — emulates the pre-zero-copy data path: the original
//               textbook SHA-1 compressor (Sha1Impl::kReference), plus a
//               store decorator that duplicates payload bytes on every
//               Put and Get, the way the old Bytes-valued interfaces did.
//               Validated against the real seed tree: the recorded seed
//               measurement and this emulation agree within noise.
//
// The current FsCH write path must also prove the zero-copy invariant:
// CopyStats counts 0 payload copies between chunker output and memory-store
// insertion, and the read-back must be byte-identical.
#include <chrono>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "common/buffer.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

constexpr std::size_t kImageBytes = 64_MiB;
constexpr std::size_t kWritePiece = 256_KiB;

// Pre-PR seed tree (commit da87164, Bytes-valued data path + textbook
// scalar SHA-1) measured with this exact harness on the dev machine —
// the sanity anchor for the live baseline emulation below, which
// reproduces the same configuration in-process (reference compressor +
// copy-per-hop stores) and should land in the same range.
constexpr double kSeedFschWriteMbps = 70.3;
constexpr double kSeedFschReadMbps = 123.2;

double MbPerSec(std::size_t bytes, double seconds) {
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / seconds;
}

// Pre-PR behaviour: every Put and Get traffics in freshly copied vectors.
class CopyingStore final : public ChunkStore {
 public:
  explicit CopyingStore(std::unique_ptr<ChunkStore> inner)
      : inner_(std::move(inner)) {}

  using ChunkStore::Put;
  Status Put(const ChunkId& id, BufferSlice data) override {
    return inner_->Put(id, BufferSlice::Copy(data.span()));
  }
  Result<BufferSlice> Get(const ChunkId& id) const override {
    auto got = inner_->Get(id);
    if (!got.ok()) return got.status();
    return BufferSlice::Copy(got.value().span());
  }
  bool Contains(const ChunkId& id) const override {
    return inner_->Contains(id);
  }
  Status Delete(const ChunkId& id) override { return inner_->Delete(id); }
  std::vector<ChunkId> List() const override { return inner_->List(); }
  std::uint64_t BytesUsed() const override { return inner_->BytesUsed(); }
  std::size_t ChunkCount() const override { return inner_->ChunkCount(); }

 private:
  std::unique_ptr<ChunkStore> inner_;
};

struct RunResult {
  double write_mb_s = 0;
  double read_mb_s = 0;
  bool identical = false;
  CopyStatsSnapshot write_copies;  // delta over the write phase
};

RunResult RunDatapath(ClientOptions client, bool baseline_emulation,
                      const Bytes& data) {
  Sha1ForceImpl(baseline_emulation ? Sha1Impl::kReference : Sha1Impl::kAuto);

  ClusterOptions options;
  options.benefactor_count = 8;
  options.client = client;
  if (baseline_emulation) {
    options.store_decorator = [](std::unique_ptr<ChunkStore> inner) {
      return std::unique_ptr<ChunkStore>(
          std::make_unique<CopyingStore>(std::move(inner)));
    };
  }
  StdchkCluster cluster(options);

  CheckpointName name{"bench", "datapath", 1};
  RunResult out;

  auto session = cluster.client().CreateFile(name);
  if (!session.ok()) return out;

  CopyStatsSnapshot before = copy_stats::Snapshot();
  auto t0 = std::chrono::steady_clock::now();
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t n = std::min(kWritePiece, data.size() - pos);
    if (!session.value()->Write(ByteSpan(data.data() + pos, n)).ok()) {
      return out;
    }
    pos += n;
  }
  if (!session.value()->Close().ok()) return out;
  auto t1 = std::chrono::steady_clock::now();
  CopyStatsSnapshot after = copy_stats::Snapshot();
  out.write_copies.payload_copies =
      after.payload_copies - before.payload_copies;
  out.write_copies.payload_copy_bytes =
      after.payload_copy_bytes - before.payload_copy_bytes;
  out.write_copies.materializations =
      after.materializations - before.materializations;
  out.write_copies.materialized_bytes =
      after.materialized_bytes - before.materialized_bytes;

  auto t2 = std::chrono::steady_clock::now();
  auto read = cluster.client().ReadFile(name);
  auto t3 = std::chrono::steady_clock::now();
  if (!read.ok()) return out;
  out.identical = read.value() == data;
  out.write_mb_s = MbPerSec(kImageBytes,
                            std::chrono::duration<double>(t1 - t0).count());
  out.read_mb_s = MbPerSec(kImageBytes,
                           std::chrono::duration<double>(t3 - t2).count());
  Sha1ForceImpl(Sha1Impl::kAuto);
  return out;
}

void Report(const char* label, const char* heuristic, const RunResult& r) {
  bench::PrintRow("  %-22s write %8.1f MB/s   read %8.1f MB/s   %s", label,
                  r.write_mb_s, r.read_mb_s,
                  r.identical ? "read-back identical" : "READ-BACK MISMATCH");
  bench::JsonLine(std::string("bench_datapath"))
      .Str("config", label)
      .Str("heuristic", heuristic)
      .Num("write_mb_s", r.write_mb_s)
      .Num("read_mb_s", r.read_mb_s)
      .Int("write_payload_copies", r.write_copies.payload_copies)
      .Int("write_payload_copy_bytes", r.write_copies.payload_copy_bytes)
      .Int("identical", r.identical ? 1 : 0)
      .Emit();
}

}  // namespace
}  // namespace stdchk

int main() {
  using namespace stdchk;

  bench::PrintHeader("datapath",
                     "end-to-end write+read MB/s, 64 MiB images (wall clock)");
  Rng rng(7);
  Bytes image = rng.RandomBytes(kImageBytes);

  ClientOptions fsch;
  fsch.protocol = WriteProtocol::kSlidingWindow;  // push-as-produced

  CbchParams cbch_params;  // paper defaults: m=20, k=14, p=1, rolling hash
  ClientOptions cbch = fsch;
  cbch.chunker = std::make_shared<ContentBasedChunker>(cbch_params);

  bench::PrintSection("current (zero-copy slices + accelerated SHA-1)");
  RunResult fsch_now = RunDatapath(fsch, /*baseline_emulation=*/false, image);
  Report("FsCH(1MiB)/current", "fsch", fsch_now);
  RunResult cbch_now = RunDatapath(cbch, /*baseline_emulation=*/false, image);
  Report("CbCH(rolling)/current", "cbch", cbch_now);

  bench::PrintSection(
      "baseline emulation (textbook SHA-1 + copy-per-hop stores)");
  RunResult fsch_base = RunDatapath(fsch, /*baseline_emulation=*/true, image);
  Report("FsCH(1MiB)/baseline", "fsch", fsch_base);
  RunResult cbch_base = RunDatapath(cbch, /*baseline_emulation=*/true, image);
  Report("CbCH(rolling)/baseline", "cbch", cbch_base);

  double write_speedup =
      fsch_base.write_mb_s > 0 ? fsch_now.write_mb_s / fsch_base.write_mb_s : 0;
  bench::PrintSection("verdict");
  bench::PrintRow("  FsCH write speedup vs live baseline emulation: %.2fx",
                  write_speedup);
  bench::PrintRow("  FsCH write speedup vs recorded seed (%.1f MB/s): %.2fx",
                  kSeedFschWriteMbps,
                  fsch_now.write_mb_s / kSeedFschWriteMbps);
  bench::PrintRow("  FsCH write payload copies (chunker -> store): %llu",
                  static_cast<unsigned long long>(
                      fsch_now.write_copies.payload_copies));
  bench::JsonLine("bench_datapath")
      .Str("config", "summary")
      .Num("fsch_write_speedup_vs_baseline", write_speedup)
      .Num("fsch_baseline_write_mb_s", fsch_base.write_mb_s)
      .Num("fsch_current_write_mb_s", fsch_now.write_mb_s)
      .Num("fsch_seed_write_mb_s", kSeedFschWriteMbps)
      .Num("fsch_seed_read_mb_s", kSeedFschReadMbps)
      .Num("fsch_write_speedup_vs_seed",
           fsch_now.write_mb_s / kSeedFschWriteMbps)
      .Int("fsch_zero_copy_write",
           fsch_now.write_copies.payload_copies == 0 ? 1 : 0)
      .Emit();

  bool ok = fsch_now.identical && cbch_now.identical &&
            fsch_now.write_copies.payload_copies == 0;
  if (!ok) {
    bench::PrintRow("  FAILED: zero-copy or integrity invariant violated");
    return 1;
  }
  return 0;
}
