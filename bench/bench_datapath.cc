// End-to-end chunk data path: write + read wall-clock MB/s on 64 MiB
// checkpoint images, FsCH and CbCH, through the full functional stack
// (WriteSession -> Transport -> Benefactor -> ChunkStore and back through
// the pipelined read engine).
//
// Configurations measured side by side:
//   current   — the zero-copy path: ref-counted BufferSlice payloads shared
//               from planner staging through to store insertion, hardware
//               SHA-1, gear-hash CbCH boundary scan, parallel drain naming.
//   hashN     — FsCH with the drain-naming fan-out pinned to N threads
//               (the paper's "offload the intensive hashing" lever; N=1 is
//               the serial engine).
//   disk      — benefactors persist chunks in the log-structured segment
//               store; proves disk reads are zero-copy (BufferSlice views
//               of the mmap'd segments, no materialization at all).
//   baseline  — emulates the pre-zero-copy data path: the original
//               textbook SHA-1 compressor (Sha1Impl::kReference), a store
//               decorator that duplicates payload bytes on every Put and
//               Get the way the old Bytes-valued interfaces did, and no
//               digest stamps (every verification hop re-hashes).
//               Validated against the real seed tree: the recorded seed
//               measurement and this emulation agree within noise.
//
// Invariants proven while measuring (nonzero exit on violation):
//   * current FsCH write: 0 payload copies chunker -> memory-store insert;
//   * current memory-store read: 0 materializations (slices shared);
//   * disk-store read: 0 materializations (zero-copy mmap'd segments);
//   * every read-back byte-identical.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "bench_util.h"
#include "common/buffer.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/cluster.h"

namespace stdchk {
namespace {

constexpr std::size_t kImageBytes = 64_MiB;
constexpr std::size_t kWritePiece = 256_KiB;

// Pre-PR seed tree (commit da87164, Bytes-valued data path + textbook
// scalar SHA-1) measured with this exact harness on the dev machine —
// the sanity anchor for the live baseline emulation below, which
// reproduces the same configuration in-process (reference compressor +
// copy-per-hop stores) and should land in the same range.
constexpr double kSeedFschWriteMbps = 70.3;
constexpr double kSeedFschReadMbps = 123.2;

// PR-3 committed snapshot (commit 67c9207): the Mix64 rolling-scan CbCH
// write the gear scanner's speedup is reported against (>= 2x at the time
// this snapshot was recorded), and the FsCH write the hashN sweep is read
// against. Reported, not exit-gated: wall-clock ratios on shared runners
// are too noisy to fail a build on — scripts/bench_compare.py diffs the
// committed snapshot for that, on like-for-like hardware.
constexpr double kPr3CbchWriteMbps = 188.1;
constexpr double kPr3FschWriteMbps = 453.2;

double MbPerSec(std::size_t bytes, double seconds) {
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / seconds;
}

// Pre-PR behaviour: every Put and Get traffics in freshly copied vectors.
class CopyingStore final : public ChunkStore {
 public:
  explicit CopyingStore(std::unique_ptr<ChunkStore> inner)
      : inner_(std::move(inner)) {}

  using ChunkStore::Put;
  Status Put(const ChunkId& id, BufferSlice data) override {
    return inner_->Put(id, BufferSlice::Copy(data.span()));
  }
  Result<BufferSlice> Get(const ChunkId& id) const override {
    auto got = inner_->Get(id);
    if (!got.ok()) return got.status();
    return BufferSlice::Copy(got.value().span());
  }
  bool Contains(const ChunkId& id) const override {
    return inner_->Contains(id);
  }
  Status Delete(const ChunkId& id) override { return inner_->Delete(id); }
  std::vector<ChunkId> List() const override { return inner_->List(); }
  std::uint64_t BytesUsed() const override { return inner_->BytesUsed(); }
  std::uint64_t ResidentBytes() const override {
    return inner_->ResidentBytes();
  }
  std::size_t ChunkCount() const override { return inner_->ChunkCount(); }

 private:
  std::unique_ptr<ChunkStore> inner_;
};

CopyStatsSnapshot Delta(const CopyStatsSnapshot& before,
                        const CopyStatsSnapshot& after) {
  CopyStatsSnapshot d;
  d.payload_copies = after.payload_copies - before.payload_copies;
  d.payload_copy_bytes = after.payload_copy_bytes - before.payload_copy_bytes;
  d.materializations = after.materializations - before.materializations;
  d.materialized_bytes = after.materialized_bytes - before.materialized_bytes;
  return d;
}

struct RunConfig {
  bool baseline_emulation = false;
  bool disk = false;
};

struct RunResult {
  double write_mb_s = 0;
  double read_mb_s = 0;
  bool identical = false;
  CopyStatsSnapshot write_copies;  // delta over the write phase
  CopyStatsSnapshot read_copies;   // delta over the read phase
  WriteStats write_stats;
  // Disk configs: segment-store I/O shape summed across benefactors.
  std::uint64_t disk_data_syscalls = 0;
  std::uint64_t disk_fsyncs = 0;
  std::uint64_t disk_mmap_reads = 0;
};

RunResult RunDatapath(ClientOptions client, const RunConfig& config,
                      const Bytes& data) {
  Sha1ForceImpl(config.baseline_emulation ? Sha1Impl::kReference
                                          : Sha1Impl::kAuto);

  ClusterOptions options;
  options.benefactor_count = 8;
  options.client = client;
  std::filesystem::path disk_root;
  if (config.disk) {
    disk_root = std::filesystem::temp_directory_path() /
                ("stdchk_bench_datapath_" + std::to_string(::getpid()));
    std::filesystem::remove_all(disk_root);
    options.disk_root = disk_root.string();
  }
  if (config.baseline_emulation) {
    options.store_decorator = [](std::unique_ptr<ChunkStore> inner) {
      return std::unique_ptr<ChunkStore>(
          std::make_unique<CopyingStore>(std::move(inner)));
    };
    // The old path re-hashed at every verification hop; no digest stamps.
    options.client.stamp_chunk_digests = false;
  }
  // Every exit path — including failure early-returns — must drop the
  // temp tree and restore runtime SHA-1 dispatch for the next config.
  struct Cleanup {
    std::filesystem::path dir;
    ~Cleanup() {
      if (!dir.empty()) std::filesystem::remove_all(dir);
      Sha1ForceImpl(Sha1Impl::kAuto);
    }
  } cleanup{disk_root};

  RunResult out;
  {
    StdchkCluster cluster(options);

    CheckpointName name{"bench", "datapath", 1};

    auto session = cluster.client().CreateFile(name);
    if (!session.ok()) return out;

    CopyStatsSnapshot before = copy_stats::Snapshot();
    auto t0 = std::chrono::steady_clock::now();
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t n = std::min(kWritePiece, data.size() - pos);
      if (!session.value()->Write(ByteSpan(data.data() + pos, n)).ok()) {
        return out;
      }
      pos += n;
    }
    if (!session.value()->Close().ok()) return out;
    auto t1 = std::chrono::steady_clock::now();
    out.write_copies = Delta(before, copy_stats::Snapshot());
    out.write_stats = session.value()->stats();

    CopyStatsSnapshot read_before = copy_stats::Snapshot();
    auto t2 = std::chrono::steady_clock::now();
    auto read = cluster.client().ReadFile(name);
    auto t3 = std::chrono::steady_clock::now();
    out.read_copies = Delta(read_before, copy_stats::Snapshot());
    if (!read.ok()) return out;
    out.identical = read.value() == data;
    out.write_mb_s = MbPerSec(kImageBytes,
                              std::chrono::duration<double>(t1 - t0).count());
    out.read_mb_s = MbPerSec(kImageBytes,
                             std::chrono::duration<double>(t3 - t2).count());
    for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
      ChunkStoreStats stats = cluster.benefactor(i).StoreStats();
      out.disk_data_syscalls += stats.data_syscalls;
      out.disk_fsyncs += stats.fsyncs;
      out.disk_mmap_reads += stats.mmap_reads;
    }
  }
  return out;
}

void Report(const char* label, const char* heuristic, const RunResult& r) {
  bench::PrintRow("  %-22s write %8.1f MB/s   read %8.1f MB/s   %s", label,
                  r.write_mb_s, r.read_mb_s,
                  r.identical ? "read-back identical" : "READ-BACK MISMATCH");
  bench::JsonLine(std::string("bench_datapath"))
      .Str("config", label)
      .Str("heuristic", heuristic)
      .Num("write_mb_s", r.write_mb_s)
      .Num("read_mb_s", r.read_mb_s)
      .Int("write_payload_copies", r.write_copies.payload_copies)
      .Int("write_payload_copy_bytes", r.write_copies.payload_copy_bytes)
      .Int("read_materializations", r.read_copies.materializations)
      .Int("read_materialized_bytes", r.read_copies.materialized_bytes)
      .Num("hash_ms", static_cast<double>(r.write_stats.hash_ns) / 1e6)
      .Int("hash_workers_peak", r.write_stats.hash_workers_peak)
      .Int("disk_data_syscalls", r.disk_data_syscalls)
      .Int("disk_fsyncs", r.disk_fsyncs)
      .Int("disk_mmap_reads", r.disk_mmap_reads)
      .Int("identical", r.identical ? 1 : 0)
      .Emit();
}

}  // namespace
}  // namespace stdchk

int main() {
  using namespace stdchk;

  bench::PrintHeader("datapath",
                     "end-to-end write+read MB/s, 64 MiB images (wall clock)");
  Rng rng(7);
  Bytes image = rng.RandomBytes(kImageBytes);

  ClientOptions fsch;
  fsch.protocol = WriteProtocol::kSlidingWindow;  // push-as-produced

  CbchParams gear_params;  // paper geometry (m=20, k=14, p=1), gear scan
  ClientOptions cbch_gear = fsch;
  cbch_gear.chunker = std::make_shared<ContentBasedChunker>(gear_params);

  CbchParams mix_params = gear_params;  // PR-3 scan, for the speedup row
  mix_params.boundary_hash = CbchBoundaryHash::kMix64Rolling;
  ClientOptions cbch_mix = fsch;
  cbch_mix.chunker = std::make_shared<ContentBasedChunker>(mix_params);

  bench::PrintSection("current (zero-copy slices + accelerated SHA-1)");
  RunResult fsch_now = RunDatapath(fsch, RunConfig{}, image);
  Report("FsCH(1MiB)/current", "fsch", fsch_now);
  RunResult cbch_now = RunDatapath(cbch_gear, RunConfig{}, image);
  Report("CbCH(gear)/current", "cbch", cbch_now);
  RunResult cbch_mix_now = RunDatapath(cbch_mix, RunConfig{}, image);
  Report("CbCH(rolling)/current", "cbch", cbch_mix_now);

  bench::PrintSection("hashing-worker sweep (FsCH drain naming fan-out)");
  RunResult fsch_by_workers[3];
  const int kWorkerSweep[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    ClientOptions opts = fsch;
    opts.hash_workers = kWorkerSweep[i];
    fsch_by_workers[i] = RunDatapath(opts, RunConfig{}, image);
    char label[32];
    std::snprintf(label, sizeof label, "FsCH(1MiB)/hash%d", kWorkerSweep[i]);
    Report(label, "fsch", fsch_by_workers[i]);
  }

  bench::PrintSection("disk-backed stores (zero-copy mmap reads)");
  RunConfig disk_config;
  disk_config.disk = true;
  RunResult fsch_disk = RunDatapath(fsch, disk_config, image);
  Report("FsCH(1MiB)/disk", "fsch", fsch_disk);

  bench::PrintSection(
      "baseline emulation (textbook SHA-1 + copy-per-hop stores)");
  RunConfig baseline_config;
  baseline_config.baseline_emulation = true;
  RunResult fsch_base = RunDatapath(fsch, baseline_config, image);
  Report("FsCH(1MiB)/baseline", "fsch", fsch_base);
  RunResult cbch_base = RunDatapath(cbch_mix, baseline_config, image);
  Report("CbCH(rolling)/baseline", "cbch", cbch_base);

  double write_speedup =
      fsch_base.write_mb_s > 0 ? fsch_now.write_mb_s / fsch_base.write_mb_s : 0;
  double cbch_gear_speedup_vs_pr3 = cbch_now.write_mb_s / kPr3CbchWriteMbps;
  double cbch_gear_vs_mix = cbch_mix_now.write_mb_s > 0
                                ? cbch_now.write_mb_s / cbch_mix_now.write_mb_s
                                : 0;
  double fsch_hash4_vs_hash1 =
      fsch_by_workers[0].write_mb_s > 0
          ? fsch_by_workers[2].write_mb_s / fsch_by_workers[0].write_mb_s
          : 0;
  bench::PrintSection("verdict");
  bench::PrintRow("  FsCH write speedup vs live baseline emulation: %.2fx",
                  write_speedup);
  bench::PrintRow("  FsCH write speedup vs recorded seed (%.1f MB/s): %.2fx",
                  kSeedFschWriteMbps,
                  fsch_now.write_mb_s / kSeedFschWriteMbps);
  bench::PrintRow("  CbCH gear write vs PR-3 snapshot (%.1f MB/s): %.2fx",
                  kPr3CbchWriteMbps, cbch_gear_speedup_vs_pr3);
  bench::PrintRow("  CbCH gear write vs Mix64 scan (same tree): %.2fx",
                  cbch_gear_vs_mix);
  bench::PrintRow("  FsCH write, 4 hashing workers vs 1: %.2fx "
                  "(workers engaged: %llu)",
                  fsch_hash4_vs_hash1,
                  static_cast<unsigned long long>(
                      fsch_by_workers[2].write_stats.hash_workers_peak));
  bench::PrintRow("  FsCH write payload copies (chunker -> store): %llu",
                  static_cast<unsigned long long>(
                      fsch_now.write_copies.payload_copies));
  bench::JsonLine("bench_datapath")
      .Str("config", "summary")
      .Num("fsch_write_speedup_vs_baseline", write_speedup)
      .Num("fsch_baseline_write_mb_s", fsch_base.write_mb_s)
      .Num("fsch_current_write_mb_s", fsch_now.write_mb_s)
      .Num("fsch_seed_write_mb_s", kSeedFschWriteMbps)
      .Num("fsch_seed_read_mb_s", kSeedFschReadMbps)
      .Num("fsch_write_speedup_vs_seed",
           fsch_now.write_mb_s / kSeedFschWriteMbps)
      .Num("cbch_pr3_write_mb_s", kPr3CbchWriteMbps)
      .Num("fsch_pr3_write_mb_s", kPr3FschWriteMbps)
      .Num("cbch_gear_write_speedup_vs_pr3", cbch_gear_speedup_vs_pr3)
      .Num("cbch_gear_write_speedup_vs_mix64", cbch_gear_vs_mix)
      .Num("fsch_hash4_write_speedup_vs_hash1", fsch_hash4_vs_hash1)
      .Int("fsch_zero_copy_write",
           fsch_now.write_copies.payload_copies == 0 ? 1 : 0)
      .Emit();

  // Invariants: zero-copy write, share-not-copy memory reads, zero-copy
  // disk reads (slices of the mmap'd segment log, nothing materialized),
  // vectored disk writes (at most one pwritev per batched PUT a benefactor
  // received), byte-identical read-backs.
  bool ok = fsch_now.identical && cbch_now.identical &&
            cbch_mix_now.identical && fsch_disk.identical &&
            fsch_now.write_copies.payload_copies == 0 &&
            fsch_now.read_copies.materializations == 0 &&
            fsch_disk.read_copies.materializations == 0 &&
            fsch_disk.read_copies.materialized_bytes == 0 &&
            fsch_disk.disk_data_syscalls > 0 &&
            fsch_disk.disk_data_syscalls <=
                fsch_disk.write_stats.batched_puts &&
            fsch_disk.disk_mmap_reads == fsch_disk.write_stats.chunks_total;
  for (const RunResult& r : fsch_by_workers) {
    ok = ok && r.identical && r.write_copies.payload_copies == 0;
  }
  if (!ok) {
    bench::PrintRow("  FAILED: zero-copy or integrity invariant violated");
    return 1;
  }
  return 0;
}
