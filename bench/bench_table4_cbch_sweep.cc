// Regenerates Table 4: the effect of m (window size) and k (boundary bits)
// on CbCH no-overlap performance: similarity %, throughput, and the
// average / average-min / average-max chunk sizes per image.
//
// Trace: BLCR-like, 5-minute interval (scaled-down images; see DESIGN.md).
#include "bench_util.h"
#include "chkpt/similarity.h"
#include "workload/trace_generators.h"

using namespace stdchk;

int main() {
  bench::PrintHeader("Table 4",
                     "CbCH no-overlap sweep over window size m and mask k");

  const std::size_t kWindows[] = {20, 32, 64, 128, 256};
  const int kBits[] = {8, 10, 12, 14};
  const int kImages = 5;

  bench::PrintRow("%-4s %-18s %9s %9s %9s %9s %9s", "k", "metric", "m=20",
                  "m=32", "m=64", "m=128", "m=256");

  for (int k : kBits) {
    double sim[5], thr[5], avg[5], mn[5], mx[5];
    for (int mi = 0; mi < 5; ++mi) {
      CbchParams params;
      params.window_m = kWindows[mi];
      params.boundary_bits_k = k;
      params.advance_p = kWindows[mi];  // no-overlap
      ContentBasedChunker chunker(params);

      // Page-granular mutation regime (dirty pages + page-sized heap
      // growth, no odd-sized segment shifts): this isolates the window-
      // grid alignment effect the sweep is about — a hop-by-m scan stays
      // aligned across 4 KB insertions only when m divides the page size.
      BlcrTraceOptions trace_options;
      trace_options.initial_pages = 2048;
      trace_options.dirty_fraction = 0.08;
      trace_options.mean_insertions = 2.0;
      trace_options.mean_odd_insertions = 0.0;
      trace_options.deletion_prob = 0.1;
      trace_options.seed = 21;
      auto trace = MakeBlcrLikeTrace(trace_options);
      SimilarityTracker tracker(&chunker);
      for (int i = 0; i < kImages; ++i) {
        Bytes image = trace->Next();
        tracker.AddImage(image);
      }
      sim[mi] = tracker.AverageSimilarity() * 100.0;
      thr[mi] = tracker.ThroughputMBps();
      avg[mi] = tracker.AvgChunkKB();
      mn[mi] = tracker.AvgMinChunkKB();
      mx[mi] = tracker.AvgMaxChunkKB();
    }
    bench::PrintRow("%-4d %-18s %9.1f %9.1f %9.1f %9.1f %9.1f", k,
                    "similarity (%)", sim[0], sim[1], sim[2], sim[3], sim[4]);
    bench::PrintRow("%-4s %-18s %9.1f %9.1f %9.1f %9.1f %9.1f", "",
                    "throughput (MB/s)", thr[0], thr[1], thr[2], thr[3],
                    thr[4]);
    bench::PrintRow("%-4s %-18s %9.1f %9.1f %9.1f %9.1f %9.1f", "",
                    "avg size (KB)", avg[0], avg[1], avg[2], avg[3], avg[4]);
    bench::PrintRow("%-4s %-18s %9.1f %9.1f %9.1f %9.1f %9.1f", "",
                    "avg min (KB)", mn[0], mn[1], mn[2], mn[3], mn[4]);
    bench::PrintRow("%-4s %-18s %9.1f %9.1f %9.1f %9.1f %9.1f", "",
                    "avg max (KB)", mx[0], mx[1], mx[2], mx[3], mx[4]);
    bench::PrintRow("");
    bench::JsonLine("bench_table4_cbch_sweep")
        .Int("k", static_cast<std::uint64_t>(k))
        .Num("similarity_pct_m20", sim[0])
        .Num("throughput_mb_s_m20", thr[0])
        .Num("avg_chunk_kb_m20", avg[0])
        .Emit();
  }

  bench::PrintNote(
      "paper shape to check: chunk sizes grow with both m and k (avg size "
      "~ m * 2^k); larger chunks -> fewer boundary-detection opportunities "
      "-> less similarity detected; max/min spread widens with k. Note the "
      "paper's own m=20 anomaly (30% at k=8 vs 62.8% for m=32): window "
      "grids that do not divide the page size lose alignment across "
      "page-granular insertions, which this sweep reproduces strongly.");
  return 0;
}
