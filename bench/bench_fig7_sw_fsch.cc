// Regenerates Figure 7: sliding-window write of a stream of BLCR-like
// checkpoint images with and without FsCH incremental checkpointing, for
// several write-buffer sizes; reports average OAB and ASB plus the
// storage/network savings.
//
// Scaling: the paper wrote 75 images of ~280 MB against buffers of
// 64-256 MB; we write 20 images of ~32 MB against buffers scaled by the
// same image:buffer ratio (8/16/32 MB), so the buffer-vs-image-size
// crossover that drives the paper's 256 MB observation is preserved.
#include "bench_util.h"
#include "chkpt/similarity.h"
#include "perf/experiments.h"
#include "workload/trace_generators.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader(
      "Figure 7",
      "Sliding-window write with/without FsCH incremental checkpointing");

  const int kImages = 20;
  const std::size_t kChunk = 1_MiB;
  const int kStripe = 4;

  // 1. Real FsCH pass over the trace: dedup ratio per image + hash rate.
  BlcrTraceOptions trace_options = BlcrOptionsForInterval(5, 8192, 31);
  auto trace = MakeBlcrLikeTrace(trace_options);
  FixedSizeChunker chunker(kChunk);
  SimilarityTracker tracker(&chunker);
  std::vector<double> dedup;
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < kImages; ++i) {
    Bytes image = trace->Next();
    ImageSimilarity sim = tracker.AddImage(image);
    dedup.push_back(i == 0 ? 0.0 : sim.ratio());
    sizes.push_back(image.size());
  }
  double hash_mbps = tracker.ThroughputMBps();
  double reduction = static_cast<double>(tracker.duplicate_bytes()) /
                     static_cast<double>(tracker.total_bytes());

  PlatformModel platform = PaperLanTestbed();
  auto run_stream = [&](std::uint64_t buffer, bool fsch) {
    double oab_sum = 0, asb_sum = 0;
    for (int i = 0; i < kImages; ++i) {
      PipelineConfig config;
      config.protocol = ProtocolModel::kSW;
      config.file_bytes = sizes[static_cast<std::size_t>(i)];
      config.chunk_size = kChunk;
      config.buffer_bytes = buffer;
      for (int s = 0; s < kStripe; ++s) config.stripe.push_back(s);
      if (fsch) {
        config.dedup_ratio = dedup[static_cast<std::size_t>(i)];
        config.hash_mbps = hash_mbps;
      }
      WriteResult r = RunSingleWrite(platform, kStripe, config);
      oab_sum += r.oab_mbps;
      asb_sum += r.asb_mbps;
    }
    return std::make_pair(oab_sum / kImages, asb_sum / kImages);
  };

  bench::PrintRow("%-14s %14s %14s %14s %14s", "buffer", "OAB no-FsCH",
                  "OAB FsCH", "ASB no-FsCH", "ASB FsCH");
  const std::uint64_t buffers[] = {8_MiB, 16_MiB, 32_MiB};
  const char* labels[] = {"8MB (~64MB)", "16MB (~128MB)", "32MB (~256MB)"};
  for (int b = 0; b < 3; ++b) {
    auto [oab_plain, asb_plain] = run_stream(buffers[b], false);
    auto [oab_fsch, asb_fsch] = run_stream(buffers[b], true);
    bench::PrintRow("%-14s %14.1f %14.1f %14.1f %14.1f", labels[b], oab_plain,
                    oab_fsch, asb_plain, asb_fsch);
  }

  bench::PrintRow("");
  bench::PrintRow("FsCH storage/network reduction: %.0f%% (paper: 24%%)",
                  reduction * 100.0);
  bench::PrintRow("FsCH hashing throughput (real, this machine): %.0f MB/s",
                  hash_mbps);
  bench::JsonLine("bench_fig7_sw_fsch")
      .Num("fsch_reduction_pct", reduction * 100.0)
      .Num("hash_mb_s", hash_mbps)
      .Emit();
  bench::PrintNote(
      "paper shape: FsCH slightly lowers OAB when the buffer swallows the "
      "whole image (throughput becomes hash/memcopy-bound) but repays with "
      "the data reduction; ASB improves with FsCH because less data "
      "crosses the network.");
  return 0;
}
