// Extension experiment: restart (read) performance. The paper's design
// goals require "a reasonable read performance ... to support timely job
// restarts" (§III.B) and cite FreeLoader's 88 MB/s from ten 100 Mbps
// benefactors. This bench models the restart path: fetching the latest
// checkpoint image from a stripe of benefactors, vs re-reading it from
// local disk or NFS.
#include "bench_util.h"
#include "perf/experiments.h"
#include "sim/pipe.h"

using namespace stdchk;
using namespace stdchk::perf;

namespace {

// Read pipeline: benefactor disk -> benefactor NIC -> fabric -> client NIC,
// chunks issued round-robin across the stripe with a bounded read-ahead
// window (the fs layer's read-ahead).
double RestartReadMBps(const PlatformModel& platform, int stripe_width,
                       std::uint64_t file_bytes, std::size_t chunk_size,
                       int read_ahead) {
  TestbedModel testbed(platform, 1, stripe_width);
  sim::Simulator& sim = testbed.simulator();

  const std::size_t chunks =
      static_cast<std::size_t>((file_bytes + chunk_size - 1) / chunk_size);
  std::size_t issued = 0;
  std::size_t done = 0;
  SimTime finish = 0;

  // Window of outstanding chunk fetches (read-ahead + the demand fetch).
  std::function<void()> issue_next = [&] {
    if (issued == chunks) return;
    std::size_t i = issued++;
    std::uint64_t bytes = std::min<std::uint64_t>(
        chunk_size, file_bytes - static_cast<std::uint64_t>(i) * chunk_size);
    BenefactorNode& bene = testbed.benefactor(i % static_cast<std::size_t>(stripe_width));
    bene.disk->Transfer(static_cast<double>(bytes), [&, bytes] {
      bene.nic->Transfer(static_cast<double>(bytes), [&, bytes] {
        testbed.fabric().Transfer(static_cast<double>(bytes), [&, bytes] {
          testbed.client(0).nic->Transfer(static_cast<double>(bytes), [&] {
            ++done;
            finish = sim.Now();
            issue_next();
          });
        });
      });
    });
  };
  for (int w = 0; w < read_ahead + 1 && issued < chunks; ++w) issue_next();
  sim.Run();
  return ThroughputMBps(static_cast<double>(file_bytes), finish);
}

}  // namespace

int main() {
  bench::PrintHeader("Extension",
                     "Restart path: checkpoint read throughput vs stripe "
                     "width and read-ahead");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;

  bench::PrintRow("%-10s %14s %14s %14s", "stripe", "no read-ahead",
                  "read-ahead 2", "read-ahead 8");
  for (int width : {1, 2, 4, 8}) {
    double ra0 = RestartReadMBps(platform, width, file, 1_MiB, 0);
    double ra2 = RestartReadMBps(platform, width, file, 1_MiB, 2);
    double ra8 = RestartReadMBps(platform, width, file, 1_MiB, 8);
    bench::PrintRow("%-10d %14.1f %14.1f %14.1f", width, ra0, ra2, ra8);
    bench::JsonLine("bench_ext_read_restart")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("read_mb_s_ra0", ra0)
        .Num("read_mb_s_ra2", ra2)
        .Num("read_mb_s_ra8", ra8)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintRow("baselines: local disk read %.1f MB/s, NFS %.1f MB/s",
                  platform.local_disk_read_mbps, platform.nfs_mbps);
  bench::PrintNote(
      "shape to check: without read-ahead the fetch latency chain "
      "serializes and throughput collapses; a small read-ahead window "
      "pipelines the stripe and restarts pull the image at NIC speed — "
      "faster than re-reading from local disk, matching the paper's claim "
      "that striped reads support timely restarts (FreeLoader heritage).");
  return 0;
}
