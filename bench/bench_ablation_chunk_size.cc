// Ablation: transfer chunk size. The paper fixes 1 MB chunks ("remote
// storage is more efficiently accessed in data chunks of the order of a
// megabyte", §IV.E); this sweep shows the per-chunk-overhead vs pipelining
// tradeoff behind that choice.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Ablation", "Transfer chunk size (SW, 4 benefactors)");

  PlatformModel platform = PaperLanTestbed();

  bench::PrintRow("%-12s %10s %10s", "chunk", "OAB", "ASB");
  for (std::size_t chunk : {64_KiB, 256_KiB, 512_KiB, 1_MiB, 4_MiB, 16_MiB}) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = 1_GiB;
    config.chunk_size = chunk;
    config.buffer_bytes = 64_MiB;
    for (int s = 0; s < 4; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 4, config);
    bench::PrintRow("%-12zu %10.1f %10.1f", chunk >> 10, r.oab_mbps,
                    r.asb_mbps);
    bench::JsonLine("bench_ablation_chunk_size")
        .Int("chunk_kib", static_cast<std::uint64_t>(chunk >> 10))
        .Num("oab_mb_s", r.oab_mbps)
        .Num("asb_mb_s", r.asb_mbps)
        .Emit();
  }
  bench::PrintRow("(chunk column in KiB)");

  bench::PrintRow("");
  bench::PrintNote(
      "shape to check: small chunks drown in per-chunk RPC/disk setup "
      "overhead; very large chunks lose pipelining overlap across the "
      "stripe. The megabyte region is the sweet spot — the paper's "
      "default.");
  return 0;
}
