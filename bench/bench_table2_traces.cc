// Regenerates Table 2: characteristics of the checkpoint traces. The
// paper's traces come from real BMS/BLAST runs; ours come from the
// synthetic generators (DESIGN.md §2), scaled down in size. This bench
// prints the paper's rows next to what the generators actually produce.
#include "bench_util.h"
#include "chkpt/chunker.h"
#include "workload/trace_generators.h"

using namespace stdchk;

int main() {
  bench::PrintHeader("Table 2", "Characteristics of the checkpoint traces");

  bench::PrintRow("%-10s %-18s %10s %8s %12s", "app", "type", "interval",
                  "#ckpts", "avg MB");
  for (const TraceSpec& spec : PaperTable2Specs()) {
    bench::PrintRow("%-10s %-18s %7d min %8zu %12.1f", spec.application.c_str(),
                    spec.checkpointing_type.c_str(), spec.interval_minutes,
                    spec.checkpoint_count, spec.avg_size_mb);
  }

  bench::PrintSection("generator output (scaled-down, 8 images each)");
  struct Row {
    const char* name;
    std::unique_ptr<CheckpointTrace> trace;
  };
  AppLevelTraceOptions app_options;  // ~2.7 MB, matches the paper directly
  BlcrTraceOptions blcr5 = BlcrOptionsForInterval(5, 8192, 1);
  BlcrTraceOptions blcr15 = BlcrOptionsForInterval(15, 8192, 2);
  XenTraceOptions xen;
  xen.pages = 8192;

  Row rows[] = {
      {"app-level (BMS)", MakeAppLevelTrace(app_options)},
      {"BLCR-like 5min", MakeBlcrLikeTrace(blcr5)},
      {"BLCR-like 15min", MakeBlcrLikeTrace(blcr15)},
      {"Xen-like", MakeXenLikeTrace(xen)},
  };
  bench::PrintRow("%-18s %12s %14s", "generator", "avg MB", "growth/step");
  for (Row& row : rows) {
    double total = 0;
    std::size_t first = 0, last = 0;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      Bytes image = row.trace->Next();
      if (i == 0) first = image.size();
      last = image.size();
      total += static_cast<double>(image.size());
    }
    double growth =
        (static_cast<double>(last) - static_cast<double>(first)) / (n - 1) /
        1024.0;
    bench::PrintRow("%-18s %12.1f %11.1f KB", row.name,
                    total / n / 1048576.0, growth);
    bench::JsonLine("bench_table2_traces")
        .Str("generator", row.name)
        .Num("avg_image_mb", total / n / 1048576.0)
        .Num("growth_kb_per_step", growth)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "image sizes are scaled down ~10x from the paper's traces to keep "
      "bench runtimes short; all similarity ratios are size-invariant.");
  return 0;
}
