// Regenerates Figure 2: observed application bandwidth (OAB) vs stripe
// width for the three write protocols, with the Local-I/O, FUSE-to-local
// and NFS baselines.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader(
      "Figure 2",
      "Observed application bandwidth (OAB) vs stripe width, 1 GB file");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;
  const int widths[] = {1, 2, 4, 8};

  auto run = [&](ProtocolModel protocol, int width) {
    PipelineConfig config;
    config.protocol = protocol;
    config.file_bytes = file;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.increment_bytes = 64_MiB;
    for (int i = 0; i < width; ++i) config.stripe.push_back(i);
    return RunSingleWrite(platform, width, config);
  };

  double local = 1024.0 / LocalIoSeconds(platform, file);
  double fuse = 1024.0 / FuseToLocalSeconds(platform, file);
  double nfs = 1024.0 / NfsSeconds(platform, file);

  bench::PrintRow("%-8s %10s %10s %10s %10s %10s %10s", "stripe", "CLW",
                  "IW", "SW", "FUSE", "LocalIO", "NFS");
  for (int width : widths) {
    WriteResult clw = run(ProtocolModel::kCLW, width);
    WriteResult iw = run(ProtocolModel::kIW, width);
    WriteResult sw = run(ProtocolModel::kSW, width);
    bench::PrintRow("%-8d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f", width,
                    clw.oab_mbps, iw.oab_mbps, sw.oab_mbps, fuse, local, nfs);
    bench::JsonLine("bench_fig2_oab")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("clw_oab_mb_s", clw.oab_mbps)
        .Num("iw_oab_mb_s", iw.oab_mbps)
        .Num("sw_oab_mb_s", sw.oab_mbps)
        .Num("sw_modeled_close_s", sw.close_seconds)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "paper shape: CLW tracks FUSE-local (~84 MB/s); IW and SW reach "
      "~110 MB/s once two benefactors saturate the client GigE NIC; NFS "
      "flat at 24.8 MB/s.");
  return 0;
}
