// Regenerates Table 1: time to write a 1 GB file via local I/O, via FUSE
// redirected to local I/O, and via /stdchk/null (the write-discarding FUSE
// file system that isolates the user-kernel context-switch cost).
#include "bench_util.h"
#include "common/bytes.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Table 1", "Time to write a 1 GB file");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;

  double local = LocalIoSeconds(platform, file);
  double fuse = FuseToLocalSeconds(platform, file);
  double null = FuseNullSeconds(platform, file);

  bench::PrintRow("%-22s %14s %14s", "", "paper (s)", "measured (s)");
  bench::PrintRow("%-22s %14.2f %14.2f", "Local I/O", 11.80, local);
  bench::PrintRow("%-22s %14.2f %14.2f", "FUSE to local I/O", 12.00, fuse);
  bench::PrintRow("%-22s %14.2f %14.2f", "/stdchk/null", 1.04, null);

  double overhead = (fuse - local) / local * 100.0;
  bench::PrintRow("");
  bench::PrintRow("FUSE overhead on top of local I/O: %.1f%% (paper: ~2%%)",
                  overhead);
  bench::PrintRow("modeled FUSE context switch: %.0f us/call (paper: ~32 us)",
                  ToSeconds(platform.fuse_per_call) * 1e6);
  bench::JsonLine("bench_table1_fuse_overhead")
      .Num("local_modeled_s", local)
      .Num("fuse_modeled_s", fuse)
      .Num("fuse_null_modeled_s", null)
      .Num("fuse_overhead_pct", overhead)
      .Emit();
  return 0;
}
