// Ablation: replication vs erasure coding for checkpoint availability —
// the design choice of paper §IV.A, measured instead of asserted.
//
// For a checkpoint image we compare, per redundancy scheme:
//   * storage overhead (x raw data),
//   * node failures tolerated,
//   * real encode CPU throughput (GF(256) Reed-Solomon on this machine),
//   * write-path OAB when the encoding runs inline (pessimistic
//     durability), via the DES,
//   * network bytes leaving the client.
#include <chrono>

#include "bench_util.h"
#include "erasure/reed_solomon.h"
#include "common/rng.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

namespace {

double MeasureEncodeMBps(int k, int m, std::size_t block) {
  auto rs = ReedSolomon::Create(k, m).value();
  Rng rng(77);
  Bytes data = rng.RandomBytes(block);
  auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0;
  volatile std::uint8_t sink = 0;
  do {
    auto shards = rs.EncodeBlock(data);
    sink = sink ^ shards.back()[0];  // keep the encode alive
    ++reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < 0.2);
  return static_cast<double>(block) * reps / 1048576.0 / elapsed;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation",
                     "Replication vs erasure coding (paper §IV.A)");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;

  auto run = [&](int replicas, double inline_mbps, double overhead_factor) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = file;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.replicas = replicas;
    config.pessimistic = true;  // durability before close() for both schemes
    config.hash_mbps = inline_mbps;  // inline encode cost (0 = none)
    for (int s = 0; s < 8; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 8, config);
    // Erasure ships data + parity rather than whole replicas; scale the
    // modeled replica traffic down to the parity overhead.
    r.bytes_transferred = static_cast<std::uint64_t>(
        static_cast<double>(file) * overhead_factor);
    return r;
  };

  bench::PrintRow("%-22s %10s %10s %12s %12s %12s", "scheme", "overhead",
                  "tolerates", "encode MB/s", "OAB MB/s", "net GB");

  // Replication r = 2, 3: no compute, whole-copy overhead.
  for (int r = 2; r <= 3; ++r) {
    WriteResult res = run(r, 0.0, static_cast<double>(r));
    bench::PrintRow("%-22s %9.2fx %10d %12s %12.1f %12.1f",
                    ("replication r=" + std::to_string(r)).c_str(),
                    static_cast<double>(r), r - 1, "-", res.oab_mbps,
                    static_cast<double>(res.bytes_transferred) / (1 << 30));
    bench::JsonLine("bench_ablation_erasure")
        .Str("scheme", "replication r=" + std::to_string(r))
        .Num("oab_mb_s", res.oab_mbps)
        .Num("overhead_x", static_cast<double>(r))
        .Emit();
  }

  // Reed-Solomon (k, m): parity overhead (k+m)/k, tolerates m losses,
  // inline encode at the measured GF(256) rate.
  struct Geometry {
    int k, m;
  };
  for (Geometry g : {Geometry{8, 1}, Geometry{8, 2}, Geometry{8, 3},
                     Geometry{4, 2}}) {
    double encode = MeasureEncodeMBps(g.k, g.m, 8_MiB);
    double overhead = static_cast<double>(g.k + g.m) / g.k;
    // The stripe carries each encoded shard once: traffic = overhead x.
    // The client writes one "replica" whose production is paced by the
    // inline encoder.
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = static_cast<std::uint64_t>(
        static_cast<double>(file) * overhead);
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.replicas = 1;
    config.pessimistic = true;
    config.hash_mbps = encode;
    for (int s = 0; s < 8; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 8, config);
    double oab = static_cast<double>(file) / 1048576.0 / r.close_seconds;
    bench::PrintRow("%-22s %9.2fx %10d %12.0f %12.1f %12.1f",
                    ("RS(k=" + std::to_string(g.k) + ",m=" +
                     std::to_string(g.m) + ")")
                        .c_str(),
                    overhead, g.m, encode, oab,
                    static_cast<double>(config.file_bytes) / (1 << 30));
    bench::JsonLine("bench_ablation_erasure")
        .Str("scheme",
             "RS(k=" + std::to_string(g.k) + ",m=" + std::to_string(g.m) + ")")
        .Num("oab_mb_s", oab)
        .Num("encode_mb_s", encode)
        .Num("overhead_x", overhead)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "the paper's argument, quantified: replication costs space (2-3x) "
      "but zero compute and trivially parallel repair; erasure coding "
      "cuts the space/traffic overhead to 1.1-1.5x for equal or better "
      "loss tolerance, but the inline GF(256) encode paces the write path "
      "and repair must gather k shards. For transient checkpoint data the "
      "space overhead is transient too, so stdchk picks replication.");
  return 0;
}
