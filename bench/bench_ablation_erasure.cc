// Ablation: replication vs erasure coding for checkpoint availability —
// the design choice of paper §IV.A, measured instead of asserted.
//
// Three layers:
//   1. Kernel: GF(256) encode/decode throughput per dispatched MulAccum
//      implementation (scalar / SSSE3 / AVX2), with the SIMD speedup over
//      the scalar oracle.
//   2. Model: storage overhead, failures tolerated, and modeled write-path
//      OAB when the encoding runs inline (pessimistic durability), via the
//      DES.
//   3. End-to-end: the functional cluster writing one checkpoint in
//      ErasureCoded{k,m} mode vs 2x/3x replication, then reading it back
//      under injected benefactor deaths. Shard/reconstruction/GC counters
//      are workload-determined and gated exactly by bench_compare.py;
//      MB/s rows are report-only.
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

const char* ImplName(gf256::Gf256Impl impl) {
  switch (impl) {
    case gf256::Gf256Impl::kScalar:
      return "scalar";
    case gf256::Gf256Impl::kSsse3:
      return "ssse3";
    case gf256::Gf256Impl::kAvx2:
      return "avx2";
    default:
      return "auto";
  }
}

// The kernels this CPU can actually run (forcing an unsupported kernel
// falls back, so probe by force-then-read).
std::vector<gf256::Gf256Impl> AvailableImpls() {
  std::vector<gf256::Gf256Impl> impls;
  for (gf256::Gf256Impl impl :
       {gf256::Gf256Impl::kScalar, gf256::Gf256Impl::kSsse3,
        gf256::Gf256Impl::kAvx2}) {
    gf256::Gf256ForceImpl(impl);
    if (gf256::Gf256ActiveImpl() == impl) impls.push_back(impl);
  }
  gf256::Gf256ForceImpl(gf256::Gf256Impl::kAuto);
  return impls;
}

// Data MB/s through the span-based parity encode (the write path's call).
double MeasureEncodeMBps(const ReedSolomon& rs,
                         const std::vector<ByteSpan>& views,
                         std::size_t shard_size) {
  const double data_bytes =
      static_cast<double>(shard_size) * static_cast<double>(rs.data_shards());
  auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0;
  volatile std::uint8_t sink = 0;
  do {
    auto parity = rs.EncodeParity(views, shard_size).value();
    sink = sink ^ parity.back()[0];  // keep the encode alive
    ++reps;
    elapsed = Seconds(start);
  } while (elapsed < 0.2);
  return data_bytes * reps / 1048576.0 / elapsed;
}

// Data MB/s recovering m lost data shards from the survivors — the
// worst-case degraded read / repair decode.
double MeasureDecodeMBps(const ReedSolomon& rs,
                         const std::vector<Bytes>& shards,
                         std::size_t shard_size) {
  std::vector<std::optional<ByteSpan>> views(shards.size());
  std::vector<int> want;
  for (int i = 0; i < rs.total_shards(); ++i) {
    if (i < rs.parity_shards()) {
      want.push_back(i);  // first m data shards are "lost"
    } else {
      views[static_cast<std::size_t>(i)] =
          ByteSpan(shards[static_cast<std::size_t>(i)].data(),
                   shards[static_cast<std::size_t>(i)].size());
    }
  }
  std::vector<Bytes> rebuilt(want.size(), Bytes(shard_size, 0));
  std::vector<MutableByteSpan> outs;
  for (Bytes& b : rebuilt) outs.emplace_back(b.data(), b.size());
  const double data_bytes =
      static_cast<double>(shard_size) * static_cast<double>(rs.data_shards());
  auto start = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0;
  do {
    Status recovered = rs.RecoverShards(views, shard_size, want, outs);
    if (!recovered.ok()) return 0;
    ++reps;
    elapsed = Seconds(start);
  } while (elapsed < 0.2);
  return data_bytes * reps / 1048576.0 / elapsed;
}

// ---- End-to-end: functional cluster, one checkpoint, injected deaths ----

struct SchemeConfig {
  std::string name;
  int replication_target = 0;  // whole-copy schemes
  ErasureCoded erasure;        // shard schemes
  int deaths = 0;              // benefactors crashed between write and read
};

void RunClusterScheme(const SchemeConfig& scheme) {
  ClusterOptions options;
  options.benefactor_count = 10;
  options.client.chunk_size = 1_MiB;
  options.client.replication_target = scheme.replication_target;
  options.client.erasure = scheme.erasure;
  StdchkCluster cluster(options);

  Rng rng(1234);
  Bytes data = rng.RandomBytes(8_MiB);
  CheckpointName name{"bench", "n0", 1};

  auto write_start = std::chrono::steady_clock::now();
  auto session = cluster.client().CreateFile(name).value();
  Status wrote = session->Write(ByteSpan(data.data(), data.size()));
  if (wrote.ok()) wrote = session->Close().status();
  double write_s = Seconds(write_start);
  if (!wrote.ok()) {
    bench::PrintRow("  %-18s FAILED: %s", scheme.name.c_str(),
                    wrote.ToString().c_str());
    return;
  }
  const WriteStats& ws = session->stats();
  cluster.Settle();  // background replication to target, if any

  // Injected deaths: crash holders of the first chunk's redundancy, the
  // worst case the scheme claims to tolerate.
  VersionRecord record = cluster.manager().GetVersion(name).value();
  const ChunkLocation& first = record.chunk_map.chunks.front();
  std::vector<NodeId> victims;
  for (int d = 0; d < scheme.deaths; ++d) {
    victims.push_back(first.erasure_coded()
                          ? first.shards[static_cast<std::size_t>(d)].node
                          : first.replicas[static_cast<std::size_t>(d)]);
  }
  for (NodeId victim : victims) {
    for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
      if (cluster.benefactor(i).id() == victim) {
        (void)cluster.CrashBenefactor(i);
      }
    }
  }

  auto read_start = std::chrono::steady_clock::now();
  auto reader = cluster.client().OpenFile(name).value();
  Result<Bytes> read_back = reader->ReadAll();
  double read_s = Seconds(read_start);
  const bool identical = read_back.ok() && read_back.value() == data;
  ReadStats rs = reader->stats();

  // Shard-group GC: delete the version; the metadata counter releases one
  // record per shard, exactly (workload-determined, machine-independent).
  (void)cluster.manager().DeleteVersion(name);
  std::uint64_t shard_gc_reclaims =
      cluster.manager().Counters().shard_records_released;

  double mb = static_cast<double>(data.size()) / 1048576.0;
  bench::PrintRow("  %-18s %8.0f %12.0f %7llu %7llu %14llu %10llu %6s",
                  scheme.name.c_str(), mb / write_s, mb / read_s,
                  static_cast<unsigned long long>(ws.data_shards_written),
                  static_cast<unsigned long long>(ws.parity_shards_written),
                  static_cast<unsigned long long>(rs.reconstructions),
                  static_cast<unsigned long long>(shard_gc_reclaims),
                  identical ? "yes" : "NO");
  bench::JsonLine("bench_ablation_erasure")
      .Str("e2e_scheme", scheme.name)
      .Num("write_mb_s", mb / write_s)
      .Num("degraded_read_mb_s", mb / read_s)
      .Int("deaths_injected", static_cast<std::uint64_t>(scheme.deaths))
      .Int("data_shards_put", ws.data_shards_written)
      .Int("parity_shards_put", ws.parity_shards_written)
      .Int("reconstructions_performed", rs.reconstructions)
      .Int("full_replica_fallbacks", rs.full_replica_fallbacks)
      .Int("shard_gc_reclaims", shard_gc_reclaims)
      .Int("read_identical", identical ? 1 : 0)
      .Emit();
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation",
                     "Replication vs erasure coding (paper §IV.A)");

  // ---- 1. GF(256) kernel throughput per dispatched implementation ----
  bench::PrintSection("GF(256) kernels (k=8, m=3, 8 MiB block)");
  {
    const int k = 8, m = 3;
    auto rs = ReedSolomon::Create(k, m).value();
    Rng rng(77);
    const std::size_t shard_size = 1_MiB;
    std::vector<Bytes> data_shards;
    std::vector<ByteSpan> views;
    for (int i = 0; i < k; ++i) {
      data_shards.push_back(rng.RandomBytes(shard_size));
      views.emplace_back(data_shards.back().data(),
                         data_shards.back().size());
    }
    std::vector<Bytes> all = data_shards;
    std::vector<Bytes> parity = rs.EncodeParity(views, shard_size).value();
    for (Bytes& p : parity) all.push_back(std::move(p));

    bench::PrintRow("  %-8s %14s %14s %10s", "impl", "encode MB/s",
                    "decode MB/s", "speedup");
    double scalar_encode = 0;
    for (gf256::Gf256Impl impl : AvailableImpls()) {
      gf256::Gf256ForceImpl(impl);
      double encode = MeasureEncodeMBps(rs, views, shard_size);
      double decode = MeasureDecodeMBps(rs, all, shard_size);
      if (impl == gf256::Gf256Impl::kScalar) scalar_encode = encode;
      double speedup = scalar_encode > 0 ? encode / scalar_encode : 1.0;
      bench::PrintRow("  %-8s %14.0f %14.0f %9.1fx", ImplName(impl), encode,
                      decode, speedup);
      bench::JsonLine("bench_ablation_erasure")
          .Str("impl", ImplName(impl))
          .Int("k", k)
          .Int("m", m)
          .Num("encode_mb_s", encode)
          .Num("decode_mb_s", decode)
          .Num("speedup_x", speedup)
          .Emit();
    }
    gf256::Gf256ForceImpl(gf256::Gf256Impl::kAuto);
  }

  // ---- 2. Modeled write-path cost (DES, paper LAN testbed) ----
  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;

  auto run = [&](int replicas, double inline_mbps, double overhead_factor) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = file;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.replicas = replicas;
    config.pessimistic = true;  // durability before close() for both schemes
    config.hash_mbps = inline_mbps;  // inline encode cost (0 = none)
    for (int s = 0; s < 8; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 8, config);
    // Erasure ships data + parity rather than whole replicas; scale the
    // modeled replica traffic down to the parity overhead.
    r.bytes_transferred = static_cast<std::uint64_t>(
        static_cast<double>(file) * overhead_factor);
    return r;
  };

  bench::PrintSection("modeled write path (DES, 1 GiB checkpoint)");
  bench::PrintRow("%-22s %10s %10s %12s %12s %12s", "scheme", "overhead",
                  "tolerates", "encode MB/s", "OAB MB/s", "net GB");

  // Replication r = 2, 3: no compute, whole-copy overhead.
  for (int r = 2; r <= 3; ++r) {
    WriteResult res = run(r, 0.0, static_cast<double>(r));
    bench::PrintRow("%-22s %9.2fx %10d %12s %12.1f %12.1f",
                    ("replication r=" + std::to_string(r)).c_str(),
                    static_cast<double>(r), r - 1, "-", res.oab_mbps,
                    static_cast<double>(res.bytes_transferred) / (1 << 30));
    bench::JsonLine("bench_ablation_erasure")
        .Str("scheme", "replication r=" + std::to_string(r))
        .Num("oab_mb_s", res.oab_mbps)
        .Num("overhead_x", static_cast<double>(r))
        .Emit();
  }

  // Reed-Solomon (k, m): parity overhead (k+m)/k, tolerates m losses,
  // inline encode at the measured GF(256) rate (kAuto = widest kernel).
  struct Geometry {
    int k, m;
  };
  for (Geometry g : {Geometry{8, 1}, Geometry{8, 2}, Geometry{8, 3},
                     Geometry{4, 2}}) {
    auto rs = ReedSolomon::Create(g.k, g.m).value();
    Rng rng(78);
    std::size_t shard_size = 8_MiB / static_cast<std::size_t>(g.k);
    std::vector<Bytes> shards;
    std::vector<ByteSpan> views;
    for (int i = 0; i < g.k; ++i) {
      shards.push_back(rng.RandomBytes(shard_size));
      views.emplace_back(shards.back().data(), shards.back().size());
    }
    double encode = MeasureEncodeMBps(rs, views, shard_size);
    double overhead = static_cast<double>(g.k + g.m) / g.k;
    // The stripe carries each encoded shard once: traffic = overhead x.
    // The client writes one "replica" whose production is paced by the
    // inline encoder.
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = static_cast<std::uint64_t>(
        static_cast<double>(file) * overhead);
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.replicas = 1;
    config.pessimistic = true;
    config.hash_mbps = encode;
    for (int s = 0; s < 8; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 8, config);
    double oab = static_cast<double>(file) / 1048576.0 / r.close_seconds;
    bench::PrintRow("%-22s %9.2fx %10d %12.0f %12.1f %12.1f",
                    ("RS(k=" + std::to_string(g.k) + ",m=" +
                     std::to_string(g.m) + ")")
                        .c_str(),
                    overhead, g.m, encode, oab,
                    static_cast<double>(config.file_bytes) / (1 << 30));
    bench::JsonLine("bench_ablation_erasure")
        .Str("scheme",
             "RS(k=" + std::to_string(g.k) + ",m=" + std::to_string(g.m) + ")")
        .Num("oab_mb_s", oab)
        .Num("encode_mb_s", encode)
        .Num("overhead_x", overhead)
        .Emit();
  }

  // ---- 3. End-to-end: the functional cluster under injected deaths ----
  bench::PrintSection(
      "end-to-end cluster, 8 MiB checkpoint, deaths injected before read");
  bench::PrintRow("  %-18s %8s %12s %7s %7s %14s %10s %6s", "scheme",
                  "write", "degraded-rd", "dshard", "pshard", "reconstructs",
                  "gc-shards", "ok");
  RunClusterScheme({.name = "replication r=2",
                    .replication_target = 2,
                    .erasure = {},
                    .deaths = 1});
  RunClusterScheme({.name = "replication r=3",
                    .replication_target = 3,
                    .erasure = {},
                    .deaths = 2});
  RunClusterScheme({.name = "erasure k=4,m=2",
                    .replication_target = 0,
                    .erasure = {4, 2},
                    .deaths = 2});

  bench::PrintRow("");
  bench::PrintNote(
      "the paper's argument, quantified: replication costs space (2-3x) "
      "but zero compute and trivially parallel repair; erasure coding "
      "cuts the space/traffic overhead to 1.1-1.5x for equal or better "
      "loss tolerance, but the inline GF(256) encode paces the write path "
      "and repair must gather k shards. The PSHUFB kernels shrink that "
      "compute gap by an order of magnitude, which is why ErasureCoded{k,m} "
      "is now a first-class write mode rather than a modeled what-if.");
  return 0;
}
