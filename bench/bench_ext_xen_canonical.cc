// Extension experiment: Xen checkpoint canonicalization — the solution the
// paper leaves as an open problem ("We are currently exploring solutions
// to create Xen checkpoint images that preserve the similarity between
// incremental checkpoint images", §V.E).
//
// Re-running the Table 3 Xen column on canonicalized images (pfn-sorted,
// volatile headers stripped) recovers the similarity that raw Xen dumps
// destroy, at a modest canonicalization cost measured here for real.
#include <chrono>

#include "bench_util.h"
#include "chkpt/similarity.h"
#include "workload/trace_generators.h"
#include "workload/xen_canonicalize.h"

using namespace stdchk;

int main() {
  bench::PrintHeader("Extension",
                     "Xen checkpoint canonicalization (paper §V.E open problem)");

  XenTraceOptions options;
  options.pages = 2048;  // ~8.4 MB images
  options.dirty_fraction = 0.10;
  options.seed = 91;

  XenImageLayout layout;
  layout.page_bytes = options.page_bytes;
  layout.header_bytes = options.header_bytes;

  struct Tech {
    const char* name;
    std::unique_ptr<Chunker> chunker;
  };
  std::vector<Tech> techs;
  techs.push_back({"FsCH 256KB", std::make_unique<FixedSizeChunker>(256_KiB)});
  techs.push_back({"FsCH 4KB", std::make_unique<FixedSizeChunker>(4_KiB)});
  CbchParams cbch{32, 10, 32, 16u << 20, false};
  techs.push_back({"CbCH no-overlap", std::make_unique<ContentBasedChunker>(cbch)});

  const int kImages = 5;
  bench::PrintRow("%-18s %16s %18s", "technique", "raw Xen sim", "canonical sim");
  double canon_seconds = 0;
  std::uint64_t canon_bytes = 0;
  for (const Tech& tech : techs) {
    auto raw_trace = MakeXenLikeTrace(options);
    SimilarityTracker raw(tech.chunker.get());
    auto canon_trace = MakeXenLikeTrace(options);
    SimilarityTracker canon(tech.chunker.get());
    for (int i = 0; i < kImages; ++i) {
      raw.AddImage(raw_trace->Next());
      Bytes image = canon_trace->Next();
      auto start = std::chrono::steady_clock::now();
      auto canonical = CanonicalizeXenImage(image, layout);
      canon_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      canon_bytes += image.size();
      if (!canonical.ok()) {
        bench::PrintRow("canonicalization failed: %s",
                        canonical.status().ToString().c_str());
        return 1;
      }
      canon.AddImage(canonical.value().pages);
    }
    bench::PrintRow("%-18s %15.1f%% %17.1f%%", tech.name,
                    raw.AverageSimilarity() * 100.0,
                    canon.AverageSimilarity() * 100.0);
    bench::JsonLine("bench_ext_xen_canonical")
        .Str("technique", tech.name)
        .Num("raw_similarity_pct", raw.AverageSimilarity() * 100.0)
        .Num("canonical_similarity_pct", canon.AverageSimilarity() * 100.0)
        .Emit();
  }

  bench::PrintRow("");
  double canon_mb_s =
      static_cast<double>(canon_bytes) / 1048576.0 / canon_seconds;
  bench::PrintRow("canonicalization throughput: %.0f MB/s (sort by pfn + strip "
                  "volatile headers)",
                  canon_mb_s);
  bench::JsonLine("bench_ext_xen_canonical")
      .Str("technique", "summary")
      .Num("canonicalization_mb_s", canon_mb_s)
      .Emit();
  bench::PrintNote(
      "shape to check: raw Xen images defeat every heuristic (the paper's "
      "near-zero column); pfn-sorted, header-stripped images recover "
      "BLCR-level similarity, making VM checkpoints incremental-friendly. "
      "The transform is byte-exactly invertible via a <1% sidecar.");
  return 0;
}
