// Regenerates Table 3: average similarity between successive checkpoint
// images and heuristic throughput, per similarity-detection technique and
// per checkpointing style.
//
// Traces are the synthetic generators of src/workload (DESIGN.md §2),
// scaled down ~10x in image size; similarity ratios are size-invariant.
// The paper-style CbCH rows recompute a SHA-1 window hash at every scan
// position — the cost structure behind the paper's 1.1 MB/s (overlap) and
// 26 MB/s (no-overlap) measurements — and therefore run on further-reduced
// traces to keep this bench quick. The "(rolling)"/"(fnv)" rows are our
// optimized variants of the same heuristics.
#include <functional>
#include <memory>

#include "bench_util.h"
#include "chkpt/similarity.h"
#include "workload/trace_generators.h"

using namespace stdchk;

namespace {

struct TraceCase {
  const char* name;
  // `pages` scales the image; `images` the trace length.
  std::function<std::unique_ptr<CheckpointTrace>(std::size_t)> make;
  std::size_t pages_full, pages_small;
  int images_full, images_small;
};

struct TechResult {
  double similarity_pct;
  double throughput_mbps;
};

TechResult RunTechnique(const TraceCase& tc, const Chunker& chunker,
                        bool small) {
  auto trace = tc.make(small ? tc.pages_small : tc.pages_full);
  SimilarityTracker tracker(&chunker);
  int images = small ? tc.images_small : tc.images_full;
  for (int i = 0; i < images; ++i) {
    Bytes image = trace->Next();
    tracker.AddImage(image);
  }
  return TechResult{tracker.AverageSimilarity() * 100.0,
                    tracker.ThroughputMBps()};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 3",
      "Similarity detection heuristics: similarity %% [throughput MB/s]");

  std::vector<TraceCase> traces;
  traces.push_back(TraceCase{
      "BMS-app(1min)",
      [](std::size_t pages) {
        AppLevelTraceOptions options;
        options.image_bytes = pages * 4096;
        return MakeAppLevelTrace(options);
      },
      /*pages_full=*/691, /*pages_small=*/256, 10, 4});
  traces.push_back(TraceCase{
      "BLCR(5min)",
      [](std::size_t pages) {
        return MakeBlcrLikeTrace(BlcrOptionsForInterval(5, pages, 11));
      },
      2048, 256, 6, 4});
  traces.push_back(TraceCase{
      "BLCR(15min)",
      [](std::size_t pages) {
        return MakeBlcrLikeTrace(BlcrOptionsForInterval(15, pages, 12));
      },
      2048, 256, 6, 4});
  traces.push_back(TraceCase{
      "Xen(5/15min)",
      [](std::size_t pages) {
        XenTraceOptions options;
        options.pages = pages;
        options.seed = 13;
        return MakeXenLikeTrace(options);
      },
      2048, 256, 5, 3});

  struct Technique {
    std::string label;
    std::unique_ptr<Chunker> chunker;
    bool slow;  // paper-style SHA-1-per-window scans run on small traces
  };
  std::vector<Technique> techniques;
  techniques.push_back(
      {"FsCH 1KB", std::make_unique<FixedSizeChunker>(1_KiB), false});
  techniques.push_back(
      {"FsCH 256KB", std::make_unique<FixedSizeChunker>(256_KiB), false});
  techniques.push_back(
      {"FsCH 1MB", std::make_unique<FixedSizeChunker>(1_MiB), false});
  CbchParams overlap_paper{20, 14, 1, 16u << 20, /*recompute=*/true};
  techniques.push_back({"CbCH overlap (paper-style)",
                        std::make_unique<ContentBasedChunker>(overlap_paper),
                        true});
  CbchParams overlap_rolling{20, 14, 1, 16u << 20, /*recompute=*/false};
  techniques.push_back({"CbCH overlap (rolling)",
                        std::make_unique<ContentBasedChunker>(overlap_rolling),
                        false});
  CbchParams no_overlap_paper{20, 10, 20, 16u << 20, /*recompute=*/true};
  techniques.push_back(
      {"CbCH no-overlap (paper-style)",
       std::make_unique<ContentBasedChunker>(no_overlap_paper), true});
  CbchParams no_overlap{32, 10, 32, 16u << 20, /*recompute=*/false};
  techniques.push_back({"CbCH no-overlap (fnv)",
                        std::make_unique<ContentBasedChunker>(no_overlap),
                        false});

  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "technique",
                  "BMS-app(1min)", "BLCR(5min)", "BLCR(15min)", "Xen");
  for (const Technique& tech : techniques) {
    char cells[4][64];
    bench::JsonLine json("bench_table3_similarity");
    json.Str("technique", tech.label);
    static const char* kTraceKeys[] = {"bms", "blcr5", "blcr15", "xen"};
    for (std::size_t t = 0; t < traces.size(); ++t) {
      TechResult r = RunTechnique(traces[t], *tech.chunker, tech.slow);
      std::snprintf(cells[t], sizeof(cells[t]), "%5.1f%% [%7.1f]",
                    r.similarity_pct, r.throughput_mbps);
      json.Num(std::string(kTraceKeys[t]) + "_similarity_pct",
               r.similarity_pct);
      json.Num(std::string(kTraceKeys[t]) + "_mb_s", r.throughput_mbps);
    }
    bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", tech.label.c_str(),
                    cells[0], cells[1], cells[2], cells[3]);
    json.Emit();
  }

  bench::PrintSection("paper values (similarity % [MB/s])");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "technique", "BMS-app",
                  "BLCR(5min)", "BLCR(15min)", "Xen");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "FsCH 1KB", "0.0 [96]",
                  "25 [99]", "9 [100]", "~0");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "FsCH 256KB", "0.0 [102]",
                  "24.3 [110]", "7.1 [112]", "~0");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "FsCH 1MB", "0.0 [108]",
                  "23.4 [109]", "6.3 [113]", "~0");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "CbCH overlap",
                  "0.0 [1.5]", "84 [1.1]", "70.9 [1.1]", "~0");
  bench::PrintRow("%-30s %-22s %-22s %-22s %-22s", "CbCH no-overlap",
                  "0.0 [28.4]", "82 [26.6]", "70 [26.4]", "~0");

  bench::PrintRow("");
  bench::PrintNote(
      "shape to check: app-level ~0 everywhere; overlap CbCH >> FsCH on "
      "BLCR; 15-min interval below 5-min; Xen near zero; the paper-style "
      "SHA-1-per-window scans are 1-2 orders of magnitude slower than FsCH "
      "(overlap slowest), while the rolling/fnv variants close most of the "
      "gap. Known deviation: our no-overlap rows detect less similarity "
      "than the paper's 82% because the synthetic trace's odd-sized "
      "insertions desynchronize any hop-by-m window grid (the same "
      "alignment fragility visible in the paper's own Table 4, where m=20 "
      "detects 30% at k=8 vs 62.8% for m=32); overlap scanning is immune.");
  return 0;
}
