// Regenerates Figure 6: sliding-window OAB and ASB on the 10 Gbps testbed
// (one 10 GbE client, four 1 GbE benefactors with SATA disks), 512 MB
// buffer, stripe width 1-4.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Figure 6",
                     "Sliding-window OAB/ASB on the 10 Gbps testbed");

  PlatformModel platform = Paper10GTestbed();

  bench::PrintRow("%-8s %12s %12s", "stripe", "OAB (MB/s)", "ASB (MB/s)");
  double last_oab = 0, last_asb = 0;
  for (int width : {1, 2, 3, 4}) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kSW;
    config.file_bytes = 2_GiB;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 512_MiB;
    for (int s = 0; s < width; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, width, config);
    bench::PrintRow("%-8d %12.1f %12.1f", width, r.oab_mbps, r.asb_mbps);
    last_oab = r.oab_mbps;
    last_asb = r.asb_mbps;
  }

  bench::PrintRow("");
  bench::PrintRow("at stripe 4: OAB %.0f (paper: ~325), ASB %.0f (paper: ~225)",
                  last_oab, last_asb);
  bench::JsonLine("bench_fig6_10g")
      .Int("stripe", 4)
      .Num("oab_mb_s", last_oab)
      .Num("asb_mb_s", last_asb)
      .Emit();
  bench::PrintNote(
      "paper shape: the 10 GbE client is never the bottleneck, so both "
      "curves keep climbing with every added benefactor — stdchk aggregates "
      "the donors' I/O bandwidth.");
  return 0;
}
