// Shared formatting/config helpers for the paper-reproduction benches.
//
// Every bench prints (a) the paper's reported numbers for the experiment it
// regenerates and (b) the numbers measured from this implementation, in the
// same row/column structure, so shape comparisons are immediate.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace stdchk::bench {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==================================================================\n");
}

inline void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void PrintRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

// Machine-readable result line. Every bench binary emits at least one —
// prefixed "BENCHJSON " on its own stdout line — so scripts/bench.sh can
// collect the fleet's numbers into BENCH_RESULTS.json and the perf
// trajectory is tracked across PRs. Keys are flat; `bench` names the
// binary, the rest are metric fields (MB/s, modeled seconds, counts).
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    body_ = "{\"bench\":\"" + Escape(bench) + "\"";
  }

  JsonLine& Str(const std::string& key, const std::string& value) {
    body_ += ",\"" + Escape(key) + "\":\"" + Escape(value) + "\"";
    return *this;
  }

  JsonLine& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    body_ += ",\"" + Escape(key) + "\":" + buf;
    return *this;
  }

  JsonLine& Int(const std::string& key, std::uint64_t value) {
    body_ += ",\"" + Escape(key) + "\":" + std::to_string(value);
    return *this;
  }

  void Emit() { std::printf("BENCHJSON %s}\n", body_.c_str()); }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;
      out.push_back(c);
    }
    return out;
  }

  std::string body_;
};

}  // namespace stdchk::bench
