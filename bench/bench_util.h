// Shared formatting/config helpers for the paper-reproduction benches.
//
// Every bench prints (a) the paper's reported numbers for the experiment it
// regenerates and (b) the numbers measured from this implementation, in the
// same row/column structure, so shape comparisons are immediate.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace stdchk::bench {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("==================================================================\n");
}

inline void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void PrintRow(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
}

}  // namespace stdchk::bench
