// Regenerates Figure 8: aggregate stdchk throughput over time while 7
// clients (starting at 10 s intervals) each write 100 files of 100 MB to a
// pool of 20 benefactors — ~70 GB total.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Figure 8",
                     "Aggregate throughput, 7 clients x 100 x 100 MB files, "
                     "20 benefactors");

  ScalabilityConfig config;  // the paper's full configuration
  ScalabilityResult r = RunScalability(PaperLanTestbed(), config);

  bench::PrintRow("%-12s %14s", "time (s)", "MB/s");
  for (const auto& point : r.timeline) {
    int bars = static_cast<int>(point.mb_per_second / 10.0);
    std::string bar(static_cast<std::size_t>(bars > 40 ? 40 : bars), '#');
    bench::PrintRow("%-12.1f %14.1f  %s", point.time_seconds,
                    point.mb_per_second, bar.c_str());
  }

  bench::PrintRow("");
  bench::PrintRow("total data: %.1f GB in %.0f s",
                  static_cast<double>(r.total_bytes) / (1 << 30),
                  r.total_seconds);
  bench::PrintRow("peak aggregate throughput:      %6.1f MB/s", r.peak_mbps);
  bench::PrintRow("sustained aggregate throughput: %6.1f MB/s (paper: ~280, "
                  "limited by the testbed's switching fabric)",
                  r.sustained_mbps);
  bench::PrintNote(
      "shape to check: ramp-up as staggered clients join, then a plateau "
      "pinned at the fabric limit rather than scaling with client count.");
  bench::JsonLine("bench_fig8_scalability")
      .Num("peak_mb_s", r.peak_mbps)
      .Num("sustained_mb_s", r.sustained_mbps)
      .Num("modeled_total_s", r.total_seconds)
      .Emit();
  return 0;
}
