// Ablation: the optimistic-vs-pessimistic write-semantics tradeoff the
// paper's design enables (§IV.A) — close() latency / OAB vs the number of
// synchronously written replicas, against background replication.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Ablation",
                     "Write semantics: optimistic vs pessimistic replication");

  PlatformModel platform = PaperLanTestbed();

  bench::PrintRow("%-12s %-14s %10s %10s %12s %14s", "replicas", "semantics",
                  "OAB", "ASB", "close (s)", "net traffic");
  for (int replicas : {1, 2, 3}) {
    for (bool pessimistic : {false, true}) {
      PipelineConfig config;
      config.protocol = ProtocolModel::kSW;
      config.file_bytes = 1_GiB;
      config.chunk_size = 1_MiB;
      config.buffer_bytes = 64_MiB;
      config.replicas = replicas;
      config.pessimistic = pessimistic;
      for (int s = 0; s < 4; ++s) config.stripe.push_back(s);
      WriteResult r = RunSingleWrite(platform, 4, config);
      bench::PrintRow("%-12d %-14s %10.1f %10.1f %12.2f %11.1f GB", replicas,
                      pessimistic ? "pessimistic" : "optimistic", r.oab_mbps,
                      r.asb_mbps, r.close_seconds,
                      static_cast<double>(r.bytes_transferred) / (1 << 30));
      bench::JsonLine("bench_ablation_write_semantics")
          .Int("replicas", static_cast<std::uint64_t>(replicas))
          .Str("semantics", pessimistic ? "pessimistic" : "optimistic")
          .Num("oab_mb_s", r.oab_mbps)
          .Num("asb_mb_s", r.asb_mbps)
          .Num("modeled_close_s", r.close_seconds)
          .Emit();
    }
  }

  bench::PrintRow("");
  bench::PrintNote(
      "shape to check: optimistic writes keep OAB flat as the replication "
      "target grows (replication is background work); pessimistic writes "
      "trade OAB for durability, dividing client NIC bandwidth across the "
      "synchronous replicas.");
  return 0;
}
