// Live compaction soak: a sustained put/delete mix — with reader slices
// held across the churn — against the disk segment store and the memory
// generation store, with throttled CompactStep passes interleaved the way
// the background pump runs them.
//
// The headline invariant (nonzero exit on violation) is the one that makes
// long-running donated-storage deployments viable:
//   * disk: total segment-file bytes stay <= (1 + slack) * live bytes
//     (plus one segment of active-append slop) at every checkpoint of the
//     run — dead bytes are handed back while traffic continues;
//   * memory: ResidentBytes() stays similarly bounded relative to
//     BytesUsed() — generation backings do not stay pinned by survivors;
//   * zero foreground op failures, and every held reader slice is
//     byte-identical to its original payload at the end of the run.
//
// The compaction counters emitted below are workload-determined and gated
// exactly by scripts/bench_compare.py (DETERMINISTIC).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "chunk/chunk_store.h"
#include "common/rng.h"

namespace stdchk {
namespace {

namespace fs = std::filesystem;

struct SoakResult {
  bool ok = true;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t held_mismatches = 0;
  std::uint64_t footprint_violations = 0;
  double worst_ratio = 0;  // footprint / live, worst checkpoint
  ChunkStoreStats stats;
};

constexpr double kSlack = 0.5;         // footprint <= 1.5x live (+ slop)
constexpr std::uint64_t kSegTarget = 64 * 1024;

std::uint64_t DiskFootprint(const fs::path& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// One soak: `rounds` rounds of [put a generation, delete most of an older
// one, hold a couple of reader slices, one throttled CompactStep]. The
// footprint probe runs every round; `disk_dir` empty means memory store
// (probe ResidentBytes instead of segment files).
SoakResult Soak(ChunkStore& store, const fs::path& disk_dir, int rounds) {
  SoakResult result;
  Rng rng(0x50AC);
  CompactionPolicy policy;
  policy.utilization_threshold = 0.6;
  policy.max_bytes_per_step = 128 * 1024;

  struct Held {
    BufferSlice slice;
    Bytes expected;
  };
  std::vector<Held> held;
  std::vector<std::vector<ChunkId>> generations;

  for (int round = 0; round < rounds; ++round) {
    // Put one generation of 8 chunks through one shared backing (the drain
    // shape) for the memory store; the disk store copies regardless.
    std::vector<Bytes> payloads;
    Bytes packed;
    for (int c = 0; c < 8; ++c) {
      payloads.push_back(rng.RandomBytes(1024 + rng.NextBelow(3072)));
      packed.insert(packed.end(), payloads.back().begin(),
                    payloads.back().end());
    }
    BufferRef backing = BufferRef::Take(std::move(packed));
    std::vector<ChunkPut> batch;
    std::vector<ChunkId> ids;
    std::size_t off = 0;
    for (const Bytes& data : payloads) {
      ids.push_back(ChunkId::For(data));
      batch.push_back(
          ChunkPut{ids.back(), BufferSlice(backing, off, data.size())});
      off += data.size();
    }
    ++result.ops;
    if (!store.PutBatch(batch).ok()) ++result.failures;
    generations.push_back(ids);

    // Hold a reader slice from this generation now and then: compaction
    // must leave it byte-stable however many times its home moves or dies.
    if (round % 7 == 0) {
      std::size_t pick = rng.NextBelow(payloads.size());
      auto got = store.Get(ids[pick]);
      ++result.ops;
      if (!got.ok()) {
        ++result.failures;
      } else {
        held.push_back(Held{got.value(), payloads[pick]});
      }
    }

    // Kill most of a generation a few rounds back: the dedup-churn shape
    // that strands dead bytes behind a few survivors.
    if (generations.size() > 3) {
      std::vector<ChunkId>& old_gen =
          generations[generations.size() - 4];
      for (std::size_t i = 0; i < old_gen.size(); ++i) {
        if (i % 4 == 3) continue;  // survivors pin the segment/backing
        ++result.ops;
        if (!store.Delete(old_gen[i]).ok()) ++result.failures;
      }
    }

    // The background pump's throttled pass.
    auto step = store.CompactStep(policy);
    ++result.ops;
    if (!step.ok()) ++result.failures;

    // Footprint invariant, probed live mid-churn.
    std::uint64_t live = store.BytesUsed();
    std::uint64_t footprint = disk_dir.empty()
                                  ? store.ResidentBytes()
                                  : DiskFootprint(disk_dir);
    std::uint64_t bound = static_cast<std::uint64_t>(
                              (1.0 + kSlack) * static_cast<double>(live)) +
                          kSegTarget;
    if (live > 0) {
      double ratio =
          static_cast<double>(footprint) / static_cast<double>(live);
      result.worst_ratio = std::max(result.worst_ratio, ratio);
    }
    if (footprint > bound) ++result.footprint_violations;
  }

  for (const Held& h : held) {
    if (!(h.slice == ByteSpan(h.expected))) ++result.held_mismatches;
  }
  result.stats = store.Stats();
  result.ok = result.failures == 0 && result.held_mismatches == 0 &&
              result.footprint_violations == 0;
  return result;
}

void Report(const char* name, const SoakResult& r) {
  bench::PrintRow("  %-6s ops=%llu failures=%llu held_mismatch=%llu "
                  "footprint_violations=%llu worst_ratio=%.2f",
                  name, static_cast<unsigned long long>(r.ops),
                  static_cast<unsigned long long>(r.failures),
                  static_cast<unsigned long long>(r.held_mismatches),
                  static_cast<unsigned long long>(r.footprint_violations),
                  r.worst_ratio);
  bench::PrintRow("         steps=%llu segments_compacted=%llu "
                  "generations_released=%llu rewritten=%llu",
                  static_cast<unsigned long long>(r.stats.compaction_steps),
                  static_cast<unsigned long long>(r.stats.segments_compacted),
                  static_cast<unsigned long long>(
                      r.stats.generations_released),
                  static_cast<unsigned long long>(
                      r.stats.compacted_bytes_rewritten));
}

}  // namespace
}  // namespace stdchk

int main() {
  using namespace stdchk;
  bench::PrintHeader("bench_compaction",
                     "live compaction soak: put/delete churn with held "
                     "readers; footprint stays (1+slack)x live");

  constexpr int kRounds = 200;

  bench::PrintSection("disk segment store");
  fs::path dir = fs::temp_directory_path() /
                 ("stdchk_bench_compaction_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  DiskStoreOptions options;
  options.segment_target_bytes = kSegTarget;
  auto disk = MakeDiskChunkStore(dir.string(), options);
  if (!disk.ok()) {
    std::printf("FAILED to open disk store: %s\n",
                disk.status().ToString().c_str());
    return 1;
  }
  SoakResult disk_result = Soak(*disk.value(), dir, kRounds);
  Report("disk", disk_result);
  disk.value().reset();
  fs::remove_all(dir);

  bench::PrintSection("memory generation store");
  auto memory = MakeMemoryChunkStore();
  SoakResult mem_result = Soak(*memory, fs::path(), kRounds);
  Report("memory", mem_result);

  bench::JsonLine("bench_compaction")
      .Int("rounds", kRounds)
      .Int("disk_segments_compacted", disk_result.stats.segments_compacted)
      .Int("disk_compacted_bytes", disk_result.stats.compacted_bytes_rewritten)
      .Int("disk_footprint_violations", disk_result.footprint_violations)
      .Int("mem_generations_released", mem_result.stats.generations_released)
      .Int("mem_compacted_bytes", mem_result.stats.compacted_bytes_rewritten)
      .Int("mem_footprint_violations", mem_result.footprint_violations)
      .Int("foreground_failures", disk_result.failures + mem_result.failures)
      .Int("held_mismatches",
           disk_result.held_mismatches + mem_result.held_mismatches)
      .Emit();

  bool compacted = disk_result.stats.segments_compacted > 0 &&
                   mem_result.stats.generations_released > 0;
  if (!disk_result.ok || !mem_result.ok || !compacted) {
    bench::PrintRow("  FAILED: compaction footprint/stability invariant "
                    "violated");
    return 1;
  }
  return 0;
}
