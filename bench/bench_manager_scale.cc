// Metadata-manager scaling: many clients hammering the control plane with
// an open/write/commit/read/delete/GC mix, across catalog shard counts.
//
// Two things are measured:
//   1. metadata ops/s vs shard count (informational on a small CI box —
//      contention relief needs cores, same caveat as hash_workers_peak);
//   2. the decentralized-placement RPC counters, which are DETERMINISTIC
//      for this fixed workload and asserted here: in steady state the
//      manager performs zero placement work (fetches == one per client
//      cache, mismatches == 0, server-side placements == 0), and a
//      membership change costs exactly one refetch per client.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/placement.h"
#include "manager/metadata_manager.h"

using namespace stdchk;

namespace {

constexpr int kThreads = 8;       // fixed: counters stay machine-independent
constexpr int kBenefactors = 32;
constexpr int kSteadyWrites = 48;  // per thread
constexpr int kChurnWrites = 4;    // per thread, after the membership change
constexpr int kStripeWidth = 2;

void Require(bool ok, const std::string& what) {
  if (ok) return;
  std::fprintf(stderr, "bench_manager_scale: invariant FAILED: %s\n",
               what.c_str());
  std::exit(1);
}

ChunkId BenchChunkId(int thread_idx, int i, int c) {
  std::string s = "scale-" + std::to_string(thread_idx) + "-" +
                  std::to_string(i) + "-" + std::to_string(c);
  return ChunkId::For(AsBytes(s));
}

// One client's slice of the workload: decentralized writes (cached table,
// local stripe computation, epoch-validated reserve/commit) mixed with
// reads, deletes and orphan-only GC exchanges. `first_timestep` lets the
// churn phase continue where the steady phase stopped.
void RunClient(MetadataManager* manager, PlacementTableCache* cache,
               NodeId reporter, int thread_idx, int first_timestep,
               int writes) {
  std::string app = "scale-t" + std::to_string(thread_idx);
  for (int i = first_timestep; i < first_timestep + writes; ++i) {
    auto table = cache->Get();
    Require(table.ok(), "placement table fetch");
    CheckpointName name{app, "n", static_cast<std::uint64_t>(i)};
    auto stripe =
        ComputeStripe(table.value(), kStripeWidth, PlacementSeed(name));
    Require(stripe.ok(), "local stripe computation");
    auto reservation = manager->ReserveStripeAt(table.value().epoch,
                                                stripe.value(), 2048);
    std::uint64_t placed_epoch = table.value().epoch;
    if (!reservation.ok()) {
      // Stale epoch: refetch once and retry — the protocol's only
      // recovery path, and the only manager placement traffic that can
      // ever exist in this workload.
      cache->Invalidate();
      table = cache->Get();
      Require(table.ok(), "placement table refetch");
      stripe = ComputeStripe(table.value(), kStripeWidth, PlacementSeed(name));
      Require(stripe.ok(), "stripe recomputation");
      reservation = manager->ReserveStripeAt(table.value().epoch,
                                             stripe.value(), 2048);
      placed_epoch = table.value().epoch;
      Require(reservation.ok(), "reserve after refetch");
    }

    VersionRecord record;
    record.name = name;
    for (int c = 0; c < 2; ++c) {
      ChunkLocation loc;
      loc.id = BenchChunkId(thread_idx, i, c);
      loc.file_offset = static_cast<std::uint64_t>(c) * 1024;
      loc.size = 1024;
      loc.replicas = stripe.value();
      record.chunk_map.chunks.push_back(loc);
    }
    record.size = 2048;
    Require(manager
                ->CommitVersionAt(reservation.value().id, record, placed_epoch)
                .ok(),
            "epoch-validated commit");

    if (i % 3 == 0) {
      Require(manager->GetVersion(name).ok(), "read-back");
      (void)manager->FilterKnownChunks({record.chunk_map.chunks[0].id});
    }
    if (i % 8 == 7) {
      Require(manager
                  ->DeleteVersion(CheckpointName{
                      app, "n", static_cast<std::uint64_t>(i - 6)})
                  .ok(),
              "delete older version");
    }
    if (i % 16 == 15) {
      // Orphans only: the reply says "delete them all" without touching
      // live catalog state, keeping the workload deterministic.
      std::vector<ChunkId> orphans = {BenchChunkId(thread_idx, -1, i)};
      Require(manager->GcExchange(reporter, orphans).ok(), "GC exchange");
    }
  }
}

struct ShardRun {
  double steady_seconds = 0;
  std::uint64_t meta_ops = 0;
  ManagerCounters steady;
  ManagerCounters churn;
};

ShardRun RunAtShardCount(int shards) {
  VirtualClock clock;
  ManagerOptions options;
  options.catalog_shards = shards;
  MetadataManager manager(&clock, options);

  std::vector<NodeId> nodes;
  for (int i = 0; i < kBenefactors; ++i) {
    BenefactorInfo info;
    info.host = "grid-" + std::to_string(i);
    info.total_bytes = 64_GiB;
    info.free_bytes = 64_GiB;
    nodes.push_back(manager.RegisterBenefactor(info).value());
  }

  // One placement-table cache per client, as in the real proxy.
  std::vector<std::unique_ptr<PlacementTableCache>> caches;
  for (int t = 0; t < kThreads; ++t) {
    caches.push_back(std::make_unique<PlacementTableCache>(&manager));
  }

  ShardRun run;
  auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(RunClient, &manager, caches[t].get(), nodes[t], t,
                           1, kSteadyWrites);
    }
    for (std::thread& thread : threads) thread.join();
  }
  run.steady_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.steady = manager.Counters();

  // Steady-state invariants: zero manager placement work beyond the one
  // warm-up fetch per client cache.
  Require(run.steady.placement_table_fetches == kThreads,
          "steady: one table fetch per client");
  Require(run.steady.placement_epoch_mismatches == 0,
          "steady: no epoch mismatches");
  Require(run.steady.server_side_placements == 0,
          "steady: zero server-side placements");

  // Membership churn: a desktop joins, every cached table goes stale, and
  // each client pays exactly one FailedPrecondition + refetch.
  BenefactorInfo joiner;
  joiner.host = "grid-joiner";
  joiner.total_bytes = 64_GiB;
  joiner.free_bytes = 64_GiB;
  (void)manager.RegisterBenefactor(joiner).value();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(RunClient, &manager, caches[t].get(), nodes[t], t,
                           kSteadyWrites + 1, kChurnWrites);
    }
    for (std::thread& thread : threads) thread.join();
  }
  run.churn = manager.Counters();
  Require(run.churn.placement_epoch_mismatches == kThreads,
          "churn: exactly one mismatch per client");
  Require(run.churn.placement_table_fetches ==
              run.churn.placement_epoch_mismatches + kThreads,
          "fetches == warm-up fetches + mismatch refetches");
  Require(run.churn.server_side_placements == 0,
          "churn: still zero server-side placements");

  // Metadata RPCs issued during the steady phase (per-thread arithmetic,
  // not a measurement — the mix is fixed).
  std::uint64_t per_thread = 1;  // table fetch
  for (int i = 1; i <= kSteadyWrites; ++i) {
    per_thread += 2;                    // reserve + commit
    if (i % 3 == 0) per_thread += 2;    // read-back + chunk filter
    if (i % 8 == 7) per_thread += 1;    // delete
    if (i % 16 == 15) per_thread += 1;  // GC exchange
  }
  run.meta_ops = per_thread * kThreads;
  return run;
}

}  // namespace

int main() {
  bench::PrintHeader("Scale", "Sharded metadata manager + epoch placement");
  bench::PrintRow("%d clients x %d writes, %d benefactors, stripe width %d",
                  kThreads, kSteadyWrites, kBenefactors, kStripeWidth);
  bench::PrintRow("");
  bench::PrintRow("%-8s %12s %10s %10s %10s %12s", "shards", "meta-ops/s",
                  "fetches", "mismatch", "srv-place", "contended");

  for (int shards : {1, 4, 16}) {
    ShardRun run = RunAtShardCount(shards);
    double ops_per_sec =
        run.steady_seconds > 0
            ? static_cast<double>(run.meta_ops) / run.steady_seconds
            : 0.0;
    std::uint64_t contended = 0;
    for (const CatalogShardStats& shard : run.churn.catalog_shards) {
      contended += shard.lock_contended;
    }
    bench::PrintRow("%-8d %12.0f %10llu %10llu %10llu %12llu", shards,
                    ops_per_sec,
                    static_cast<unsigned long long>(
                        run.steady.placement_table_fetches),
                    static_cast<unsigned long long>(
                        run.steady.placement_epoch_mismatches),
                    static_cast<unsigned long long>(
                        run.steady.server_side_placements),
                    static_cast<unsigned long long>(contended));

    std::uint64_t writes =
        static_cast<std::uint64_t>(kThreads) * kSteadyWrites;
    // Steady-state row: the *_rpc counters are deterministic for this
    // fixed workload and exact-gated by scripts/bench_compare.py.
    bench::JsonLine("bench_manager_scale")
        .Int("shards", static_cast<std::uint64_t>(shards))
        .Int("threads", kThreads)
        .Int("writes", writes)
        .Int("placement_rpcs", run.steady.placement_table_fetches)
        .Int("epoch_mismatches", run.steady.placement_epoch_mismatches)
        .Int("server_placements", run.steady.server_side_placements)
        .Num("placement_rpcs_per_write",
             static_cast<double>(run.steady.placement_table_fetches) /
                 static_cast<double>(writes))
        .Num("meta_ops_per_sec", ops_per_sec)
        .Num("lock_contended", static_cast<double>(contended))
        .Emit();
    // Churn row: one membership change against warm caches.
    bench::JsonLine("bench_manager_scale")
        .Str("phase", "churn")
        .Int("shards", static_cast<std::uint64_t>(shards))
        .Int("threads", kThreads)
        .Int("placement_rpcs", run.churn.placement_table_fetches)
        .Int("epoch_mismatches", run.churn.placement_epoch_mismatches)
        .Int("server_placements", run.churn.server_side_placements)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "meta-ops/s needs real cores to show shard scaling (single-core CI "
      "serializes the threads); the RPC counters are the load-bearing "
      "result — steady-state writes cost the manager zero placement "
      "RPCs, and churn costs exactly one refetch per client.");
  return 0;
}
