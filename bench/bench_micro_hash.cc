// Micro-benchmarks (google-benchmark) for the hashing primitives that set
// the similarity heuristics' throughput ceilings: SHA-1 (chunk naming,
// portable vs hardware-accelerated), FNV-1a (window hashing), the rolling
// hash, and the full chunkers.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "chkpt/chunker.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/rolling_hash.h"

namespace stdchk {
namespace {

Bytes MakeInput(std::size_t n) {
  Rng rng(1234);
  return rng.RandomBytes(n);
}

void BM_Sha1(benchmark::State& state) {
  Bytes data = MakeInput(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(1 << 20);

// The two block compressors head to head (kShaNi falls back to portable on
// CPUs without SHA extensions, collapsing the comparison to a no-op).
void BM_Sha1Impl(benchmark::State& state) {
  Bytes data = MakeInput(1 << 20);
  static constexpr Sha1Impl kImpls[] = {Sha1Impl::kReference,
                                        Sha1Impl::kPortable, Sha1Impl::kShaNi};
  Sha1ForceImpl(kImpls[state.range(0)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1(data));
  }
  Sha1ForceImpl(Sha1Impl::kAuto);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Sha1Impl)
    ->Arg(0)   // textbook reference (the pre-optimization compressor)
    ->Arg(1)   // portable (unrolled scalar)
    ->Arg(2);  // hardware SHA extensions when available

void BM_Fnv1a(benchmark::State& state) {
  Bytes data = MakeInput(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(ByteSpan(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Fnv1a)->Arg(20)->Arg(4096)->Arg(1 << 20);

void BM_RollingHashScan(benchmark::State& state) {
  Bytes data = MakeInput(1 << 20);
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RollingHash hash(m);
    for (std::size_t i = 0; i < m; ++i) hash.Push(data[i]);
    std::uint64_t acc = 0;
    for (std::size_t pos = 0; pos + m < data.size(); ++pos) {
      hash.Roll(data[pos], data[pos + m]);
      acc ^= hash.value();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_RollingHashScan)->Arg(20)->Arg(64);

// The per-byte boundary checks head to head: the old polynomial-roll +
// Mix64 finalize (3 multiplies per byte) vs the gear table update + top-bit
// mask (shift, add, lookup). These are the raw primitives underneath the
// BM_CbchOverlap chunker rows.
void BM_Mix64BoundaryScan(benchmark::State& state) {
  Bytes data = MakeInput(1 << 20);
  const std::size_t m = 20;
  const std::uint64_t mask = (1ull << 14) - 1;
  for (auto _ : state) {
    std::uint64_t h = 0, pow_m = 1, boundaries = 0;
    for (std::size_t i = 0; i + 1 < m; ++i) pow_m *= RollingHash::kBase;
    for (std::size_t i = 0; i < m; ++i) {
      h = h * RollingHash::kBase + data[i] + 1;
    }
    for (std::size_t pos = 0; pos + m < data.size(); ++pos) {
      h = (h - (data[pos] + 1ull) * pow_m) * RollingHash::kBase +
          data[pos + m] + 1;
      boundaries += (Mix64(h) & mask) == 0;
    }
    benchmark::DoNotOptimize(boundaries);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Mix64BoundaryScan);

void BM_GearBoundaryScan(benchmark::State& state) {
  Bytes data = MakeInput(1 << 20);
  const std::uint64_t mask = gear::BoundaryMask(14);
  for (auto _ : state) {
    std::uint64_t h = 0, boundaries = 0;
    for (std::uint8_t b : data) {
      h = gear::Update(h, b);
      boundaries += (h & mask) == 0;
    }
    benchmark::DoNotOptimize(boundaries);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_GearBoundaryScan);

void BM_FsChChunker(benchmark::State& state) {
  Bytes data = MakeInput(8 << 20);
  FixedSizeChunker chunker(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto spans = chunker.Split(data);
    auto ids = HashChunks(data, spans);
    benchmark::DoNotOptimize(ids);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FsChChunker)->Arg(256 << 10)->Arg(1 << 20);

void BM_CbchNoOverlap(benchmark::State& state) {
  Bytes data = MakeInput(8 << 20);
  CbchParams params;
  params.window_m = static_cast<std::size_t>(state.range(0));
  params.boundary_bits_k = 10;
  params.advance_p = params.window_m;
  ContentBasedChunker chunker(params);
  for (auto _ : state) {
    auto spans = chunker.Split(data);
    auto ids = HashChunks(data, spans);
    benchmark::DoNotOptimize(ids);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CbchNoOverlap)->Arg(20)->Arg(32)->Arg(256);

void BM_CbchOverlap(benchmark::State& state) {
  Bytes data = MakeInput(1 << 20);  // smaller: the paper-style scan is slow
  CbchParams params;
  params.window_m = 20;
  params.boundary_bits_k = 14;
  params.advance_p = 1;
  params.recompute_per_window = state.range(0) == 1;
  params.boundary_hash = state.range(0) == 2 ? CbchBoundaryHash::kGear
                                             : CbchBoundaryHash::kMix64Rolling;
  ContentBasedChunker chunker(params);
  for (auto _ : state) {
    auto spans = chunker.Split(data);
    benchmark::DoNotOptimize(spans);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CbchOverlap)
    ->Arg(0)   // Mix64 rolling-hash scan (pre-gear hot path)
    ->Arg(1)   // paper-style per-window recompute
    ->Arg(2);  // gear scan (the current hot path)

// The streaming scanner the write path drives (ChunkPlanner::Append), fed
// in write-sized pieces — the number the end-to-end CbCH write rides on.
// Arg 0: min_chunk (0 = every position hashed, 4096 = skip-ahead active).
// Arg 1: boundary hash (0 = gear, the default; 1 = Mix64 rolling, the
// pre-gear scan kept for the differential speedup row).
void BM_CbchScannerStreaming(benchmark::State& state) {
  Bytes data = MakeInput(8 << 20);
  CbchParams params;
  params.window_m = 20;
  params.boundary_bits_k = 14;
  params.advance_p = 1;
  params.min_chunk = static_cast<std::uint32_t>(state.range(0));
  params.boundary_hash = state.range(1) == 0 ? CbchBoundaryHash::kGear
                                             : CbchBoundaryHash::kMix64Rolling;
  ContentBasedChunker chunker(params);
  constexpr std::size_t kPiece = 256 << 10;
  for (auto _ : state) {
    auto scanner = chunker.MakeScanner();
    std::vector<std::uint64_t> ends;
    for (std::size_t pos = 0; pos < data.size(); pos += kPiece) {
      scanner->Feed(ByteSpan(data.data() + pos,
                             std::min(kPiece, data.size() - pos)),
                    ends);
    }
    scanner->Finish(ends);
    benchmark::DoNotOptimize(ends);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_CbchScannerStreaming)
    ->Args({0, 0})      // gear, no minimum
    ->Args({4096, 0})   // gear + min-chunk skip-ahead
    ->Args({0, 1})      // Mix64 rolling, no minimum (pre-gear baseline)
    ->Args({4096, 1});  // Mix64 rolling + skip-ahead

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double bytes_per_second = 0;
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) bytes_per_second = it->second;
      bench::JsonLine("bench_micro_hash")
          .Str("case", run.benchmark_name())
          .Num("mb_s", bytes_per_second / (1024.0 * 1024.0))
          .Num("real_time_ns", run.GetAdjustedRealTime())
          .Emit();
    }
  }
};

}  // namespace
}  // namespace stdchk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  stdchk::JsonLineReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
