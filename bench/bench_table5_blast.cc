// Regenerates Table 5: end-to-end BLAST comparison — total execution time,
// checkpointing time, and generated data volume when checkpointing to the
// local disk vs to stdchk (sliding window + FsCH incremental
// checkpointing).
//
// The application run is modeled (compute phases + checkpoint phases every
// 30 s); the per-image dedup ratios come from the *real* FsCH engine over
// a BLCR-like trace (DESIGN.md §2). Scaled down from the paper's ~14600
// checkpoints of ~254 MB to 80 checkpoints of ~32 MB; all Table 5 numbers
// are ratios, which survive the scaling.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Table 5", "BLAST checkpointing: local disk vs stdchk");

  BlastConfig config;
  config.checkpoints = 80;
  BlastResult r = RunBlastComparison(PaperLanTestbed(), config);

  bench::PrintRow("%-28s %14s %14s %14s", "", "local disk", "stdchk",
                  "improvement");
  bench::PrintRow("%-28s %14.0f %14.0f %13.1f%%", "total execution time (s)",
                  r.local_total_s, r.stdchk_total_s,
                  r.total_improvement() * 100.0);
  bench::PrintRow("%-28s %14.1f %14.1f %13.1f%%", "checkpointing time (s)",
                  r.local_ckpt_s, r.stdchk_ckpt_s,
                  r.ckpt_improvement() * 100.0);
  bench::PrintRow("%-28s %14.2f %14.2f %13.1f%%", "data size (GB)",
                  r.local_data_gb, r.stdchk_data_gb,
                  r.data_reduction() * 100.0);

  bench::PrintSection("paper values");
  bench::PrintRow("%-28s %14s %14s %14s", "", "local disk", "stdchk",
                  "improvement");
  bench::PrintRow("%-28s %14s %14s %14s", "total execution time (s)",
                  "462,141", "455,894", "1.3%");
  bench::PrintRow("%-28s %14s %14s %14s", "checkpointing time (s)", "22,733",
                  "16,497", "27.0%");
  bench::PrintRow("%-28s %14s %14s %14s", "data size (TB)", "3.55", "1.14",
                  "69.0%");

  bench::PrintRow("");
  bench::PrintRow("avg FsCH dedup ratio measured from the trace: %.0f%%",
                  r.avg_dedup_ratio * 100.0);
  bench::JsonLine("bench_table5_blast")
      .Num("local_total_modeled_s", r.local_total_s)
      .Num("stdchk_total_modeled_s", r.stdchk_total_s)
      .Num("ckpt_improvement_pct", r.ckpt_improvement() * 100.0)
      .Num("data_reduction_pct", r.data_reduction() * 100.0)
      .Emit();
  bench::PrintNote(
      "shape to check: checkpointing itself gets markedly faster and the "
      "stored/transferred data shrinks by more than half, while total "
      "execution time barely moves because compute dominates.");
  return 0;
}
