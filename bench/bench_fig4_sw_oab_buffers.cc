// Regenerates Figure 4: sliding-window OAB for different stripe widths and
// write-buffer sizes.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Figure 4",
                     "Sliding-window OAB vs stripe width and buffer size");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t buffers[] = {32_MiB, 64_MiB, 128_MiB, 256_MiB, 512_MiB};

  bench::PrintRow("%-8s %10s %10s %10s %10s %10s", "stripe", "32MB", "64MB",
                  "128MB", "256MB", "512MB");
  for (int width : {1, 2, 4, 8}) {
    std::string row;
    double values[5];
    int i = 0;
    for (std::uint64_t buffer : buffers) {
      PipelineConfig config;
      config.protocol = ProtocolModel::kSW;
      config.file_bytes = 1_GiB;
      config.chunk_size = 1_MiB;
      config.buffer_bytes = buffer;
      for (int s = 0; s < width; ++s) config.stripe.push_back(s);
      values[i++] = RunSingleWrite(platform, width, config).oab_mbps;
    }
    bench::PrintRow("%-8d %10.1f %10.1f %10.1f %10.1f %10.1f", width,
                    values[0], values[1], values[2], values[3], values[4]);
    bench::JsonLine("bench_fig4_sw_oab_buffers")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("oab_mb_s_32mb", values[0])
        .Num("oab_mb_s_512mb", values[4])
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "paper shape: two benefactors saturate the link; larger buffers lift "
      "OAB because close() returns once data is absorbed by the window.");
  return 0;
}
