// Ablation: IW temp-file (increment) size. The paper states the result
// but omits the figure: "Our experiments indicate that smaller temporary
// files result in larger OAB and ASB due to higher concurrency in the
// write operation. Due to space constraints we do not present this
// result." (§V.C) — this bench presents it.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader("Ablation",
                     "Incremental-write temp-file size (the paper's omitted "
                     "§V.C result)");

  PlatformModel platform = PaperLanTestbed();

  bench::PrintRow("%-14s %10s %10s", "increment", "OAB", "ASB");
  for (std::uint64_t increment :
       {8_MiB, 16_MiB, 32_MiB, 64_MiB, 128_MiB, 256_MiB}) {
    PipelineConfig config;
    config.protocol = ProtocolModel::kIW;
    config.file_bytes = 1_GiB;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 256_MiB;  // page-cache allowance
    config.increment_bytes = increment;
    for (int s = 0; s < 4; ++s) config.stripe.push_back(s);
    WriteResult r = RunSingleWrite(platform, 4, config);
    std::string label = std::to_string(increment >> 20) + " MB";
    bench::PrintRow("%-14s %10.1f %10.1f", label.c_str(), r.oab_mbps,
                    r.asb_mbps);
    bench::JsonLine("bench_ablation_increment_size")
        .Int("increment_mib", static_cast<std::uint64_t>(increment >> 20))
        .Num("oab_mb_s", r.oab_mbps)
        .Num("asb_mb_s", r.asb_mbps)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "shape to check: smaller temp files release data to the network "
      "sooner, overlapping creation and propagation (higher OAB and ASB); "
      "large increments serialize whole temp-file production against its "
      "push, converging toward CLW behaviour.");
  return 0;
}
