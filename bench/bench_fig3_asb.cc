// Regenerates Figure 3: achieved storage bandwidth (ASB) vs stripe width
// for the three write protocols plus baselines.
#include "bench_util.h"
#include "perf/experiments.h"

using namespace stdchk;
using namespace stdchk::perf;

int main() {
  bench::PrintHeader(
      "Figure 3",
      "Achieved storage bandwidth (ASB) vs stripe width, 1 GB file");

  PlatformModel platform = PaperLanTestbed();
  const std::uint64_t file = 1_GiB;

  auto run = [&](ProtocolModel protocol, int width) {
    PipelineConfig config;
    config.protocol = protocol;
    config.file_bytes = file;
    config.chunk_size = 1_MiB;
    config.buffer_bytes = 64_MiB;
    config.increment_bytes = 64_MiB;
    for (int i = 0; i < width; ++i) config.stripe.push_back(i);
    return RunSingleWrite(platform, width, config);
  };

  double local = 1024.0 / LocalIoSeconds(platform, file);
  double fuse = 1024.0 / FuseToLocalSeconds(platform, file);
  double nfs = 1024.0 / NfsSeconds(platform, file);

  bench::PrintRow("%-8s %10s %10s %10s %10s %10s %10s", "stripe", "CLW",
                  "IW", "SW", "FUSE", "LocalIO", "NFS");
  for (int width : {1, 2, 4, 8}) {
    WriteResult clw = run(ProtocolModel::kCLW, width);
    WriteResult iw = run(ProtocolModel::kIW, width);
    WriteResult sw = run(ProtocolModel::kSW, width);
    bench::PrintRow("%-8d %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f", width,
                    clw.asb_mbps, iw.asb_mbps, sw.asb_mbps, fuse, local, nfs);
    bench::JsonLine("bench_fig3_asb")
        .Int("stripe", static_cast<std::uint64_t>(width))
        .Num("clw_asb_mb_s", clw.asb_mbps)
        .Num("iw_asb_mb_s", iw.asb_mbps)
        .Num("sw_asb_mb_s", sw.asb_mbps)
        .Num("sw_modeled_stored_s", sw.stored_seconds)
        .Emit();
  }

  bench::PrintRow("");
  bench::PrintNote(
      "paper shape: CLW worst (serialized local write + push, improves only "
      "slightly with stripe width); SW best, saturating the GigE NIC with "
      "two benefactors; IW between the two.");
  return 0;
}
