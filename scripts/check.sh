#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then a
# -Wall -Wextra -Werror warning sweep. Run from anywhere inside the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j "$jobs"

echo "== test =="
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== warning sweep (-Wall -Wextra -Werror) =="
cmake -B build-werror -S . -DSTDCHK_WERROR=ON
cmake --build build-werror -j "$jobs"

echo "All checks passed."
