#!/usr/bin/env bash
# Tier-1 verification, plus the static-analysis gate.
#
#   scripts/check.sh        configure, build, run the full test suite, then
#                           a -Wall -Wextra -Werror warning sweep.
#   scripts/check.sh lint   the concurrency-contract gate: a Clang build
#                           with -Wthread-safety promoted to errors
#                           (STDCHK_THREAD_SAFETY=ON) followed by
#                           clang-tidy (.clang-tidy) over every translation
#                           unit, driven by compile_commands.json. Results
#                           are cached in .lint-cache/ keyed on a content
#                           hash of the sources + config, so an unchanged
#                           tree re-lints in O(hash) time.
#
# Run from anywhere inside the repo.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

lint() {
  local cxx="${CLANG_CXX:-clang++}"
  local tidy="${CLANG_TIDY:-clang-tidy}"
  if ! command -v "$cxx" >/dev/null 2>&1 || \
     ! command -v "$tidy" >/dev/null 2>&1; then
    echo "error: '$cxx' and '$tidy' are required for the lint gate." >&2
    echo "hint: apt-get install clang clang-tidy, or point CLANG_CXX /" >&2
    echo "      CLANG_TIDY at your toolchain." >&2
    exit 1
  fi

  # Content-addressed skip: the gate's verdict is a pure function of the
  # sources, the build configuration and the tool versions. If none of
  # those changed since the last green run, don't pay for the re-run.
  mkdir -p .lint-cache
  local stamp
  stamp="$( (find src tests bench -name '*.cc' -o -name '*.h' | sort \
               | xargs sha256sum;
             sha256sum .clang-tidy CMakeLists.txt;
             "$cxx" --version; "$tidy" --version) | sha256sum | cut -d' ' -f1)"
  if [ -f ".lint-cache/$stamp" ]; then
    echo "== lint: cached green run $stamp — skipping =="
    return 0
  fi

  echo "== thread-safety build (clang, -Werror=thread-safety) =="
  cmake -B build-lint -S . \
    -DCMAKE_CXX_COMPILER="$cxx" \
    -DSTDCHK_WERROR=ON \
    -DSTDCHK_THREAD_SAFETY=ON
  cmake --build build-lint -j "$jobs"

  echo "== clang-tidy (.clang-tidy, blocking) =="
  local runner
  runner="$(command -v run-clang-tidy || true)"
  if [ -n "$runner" ]; then
    "$runner" -clang-tidy-binary "$tidy" -p build-lint -j "$jobs" \
      -quiet "$repo_root/(src|tests|bench)/.*\.cc$"
  else
    find src tests bench -name '*.cc' | sort \
      | xargs -P "$jobs" -n 1 "$tidy" -p build-lint --quiet
  fi

  : > ".lint-cache/$stamp"
  echo "Lint gate passed."
}

if [ "${1:-}" = "lint" ]; then
  lint
  exit 0
fi

echo "== configure =="
cmake -B build -S .

echo "== build =="
cmake --build build -j "$jobs"

echo "== test =="
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== warning sweep (-Wall -Wextra -Werror) =="
cmake -B build-werror -S . -DSTDCHK_WERROR=ON
cmake --build build-werror -j "$jobs"

echo "All checks passed."
