#!/usr/bin/env python3
"""Bench regression gate: diff a fresh BENCH_RESULTS.json against a baseline.

Rows are keyed by their bench name plus every non-metric field (config
labels, stripe widths, sweep parameters, ...). Metric fields are recognized
by name pattern and classified by direction:

  higher is better:  *_mb_s, *speedup*, *similarity_pct, *reduction_pct
  lower  is better:  *_ns, *modeled*_s, *overhead_pct

A metric that moves against its direction by more than --tolerance
(relative) on a row present in both files is a regression; the script
prints a report and exits 1 if any were found (0 otherwise). Added/removed
rows and metrics are reported but never fail the gate — benches evolve.

A second class of metrics is DETERMINISTIC: counts and invariants (payload
copies, syscalls, fsyncs, mmap reads, placement RPCs, epoch mismatches,
erasure shard puts/reconstructions/GC releases)
that depend only on the workload, not the hardware. These are compared
exactly — any drift is a regression, because a copy or RPC appearing on a
zero-copy / zero-RPC path is a behavior change, not noise.

Usage:
  scripts/bench_compare.py --baseline BENCH_RESULTS.json \
                           --fresh fresh.json [--tolerance 0.25] \
                           [--gate all|deterministic|perf]

CI runs --gate deterministic as a BLOCKING step (exact counters are
machine-independent) and the perf comparison as a non-blocking report —
runners are noisy shared VMs, so wall-clock gating is meant for
like-for-like hardware (run locally before refreshing the snapshot).
"""

import argparse
import json
import sys

HIGHER_BETTER = ("_mb_s", "_per_sec", "speedup", "similarity_pct",
                 "reduction_pct", "improvement_pct")
LOWER_BETTER = ("_ns", "overhead_pct", "overhead_x")
# modeled_*_s / *_total_s style wall-clock models: lower is better.
LOWER_BETTER_TIME_HINTS = ("modeled", "total_s", "real_time")

# Machine- or run-varying side measurements that must identify nothing
# (a 32-core box reports hash_workers_peak=32 where the snapshot says 1).
# Not gated — the benches assert their own invariants on these.
INFORMATIONAL = ("hash_workers_peak", "lock_contended")

# Workload-determined counts: identical on every machine for a given build,
# so any change is a real behavior change. Compared exactly, blocking.
DETERMINISTIC = ("_payload_copies", "_copy_bytes", "materializations",
                 "materialized_bytes", "identical", "zero_copy", "syscalls",
                 "mmap_reads", "fsyncs", "placement_rpcs", "epoch_mismatch",
                 "server_placements", "per_write",
                 # Erasure path: shard puts, parity reconstructions and
                 # shard-group GC releases are workload-determined counts.
                 "parity_shards", "data_shards", "reconstruction",
                 "shard_gc_reclaims", "replica_fallback",
                 # Live compaction: victims rewritten and generation
                 # releases are a function of the op sequence alone.
                 "segments_compacted", "compacted_bytes",
                 "generations_released")


def deterministic(name):
    return any(pattern in name for pattern in DETERMINISTIC)


def metric_direction(name):
    """Returns +1 (higher better), -1 (lower better) or 0 (not a metric)."""
    if informational(name) or deterministic(name):
        return 0
    for suffix in HIGHER_BETTER:
        if name.endswith(suffix) or suffix in name:
            return +1
    for suffix in LOWER_BETTER:
        if name.endswith(suffix):
            return -1
    if name.endswith("_s") and any(h in name for h in LOWER_BETTER_TIME_HINTS):
        return -1
    return 0


def informational(name):
    return any(pattern in name for pattern in INFORMATIONAL)


def row_key(row):
    """Identity of a result row: bench + every stable non-metric field.

    Floats never identify a row: an unclassified float (e.g. a wall-clock
    side measurement like hash_ms) is noise that would make keys unique
    per run and silently ungate the row's real metrics. Such fields are
    simply not compared either (no known direction). Informational integer
    measurements are likewise excluded — they vary across machines.
    Integer sweep parameters (stripe, chunk_kib, k, ...) remain identity.
    """
    parts = []
    for k in sorted(row):
        if (metric_direction(k) == 0 and not informational(k)
                and not deterministic(k) and not isinstance(row[k], float)):
            parts.append((k, row[k]))
    return tuple(parts)


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("results", []):
        key = row_key(row)
        if key in rows:
            # Duplicate identity (e.g. repeated run): keep the last row,
            # matching how a reader scanning the file top-down resolves it.
            pass
        rows[key] = row
    return rows


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_RESULTS.json snapshot")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated results to check")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative slack before a move counts as a "
                             "regression (default 0.25 = 25%%)")
    parser.add_argument("--gate", choices=("all", "deterministic", "perf"),
                        default="all",
                        help="which metric classes can fail the run: "
                             "exact-match counters, directional perf "
                             "metrics, or both (default)")
    args = parser.parse_args()

    base = load_rows(args.baseline)
    fresh = load_rows(args.fresh)
    check_perf = args.gate in ("all", "perf")
    check_deterministic = args.gate in ("all", "deterministic")

    regressions = []
    improvements = []
    for key, fresh_row in sorted(fresh.items()):
        base_row = base.get(key)
        if base_row is None:
            continue
        for name, fresh_value in fresh_row.items():
            if not isinstance(fresh_value, (int, float)):
                continue
            base_value = base_row.get(name)
            if not isinstance(base_value, (int, float)):
                continue
            if deterministic(name):
                if check_deterministic and fresh_value != base_value:
                    regressions.append(
                        f"{fmt_key(key)} :: {name} "
                        f"{base_value:.6g} != {fresh_value:.6g} "
                        f"(deterministic counter drifted)")
                continue
            direction = metric_direction(name)
            if direction == 0 or not check_perf or base_value == 0:
                continue
            ratio = fresh_value / base_value
            delta = (ratio - 1.0) * direction  # negative = got worse
            line = (f"{fmt_key(key)} :: {name} "
                    f"{base_value:.4g} -> {fresh_value:.4g} "
                    f"({(ratio - 1.0) * 100.0:+.1f}%)")
            if delta < -args.tolerance:
                regressions.append(line)
            elif delta > args.tolerance:
                improvements.append(line)

    added = [k for k in fresh if k not in base]
    removed = [k for k in base if k not in fresh]

    if improvements:
        print(f"== improvements beyond {args.tolerance:.0%} tolerance "
              f"({len(improvements)}) ==")
        for line in improvements:
            print("  " + line)
    if added:
        print(f"== new rows ({len(added)}) ==")
        for key in sorted(added):
            print("  " + fmt_key(key))
    if removed:
        print(f"== rows missing from fresh run ({len(removed)}) ==")
        for key in sorted(removed):
            print("  " + fmt_key(key))
    if regressions:
        print(f"== REGRESSIONS beyond {args.tolerance:.0%} tolerance "
              f"({len(regressions)}) ==")
        for line in regressions:
            print("  " + line)
        return 1
    print("no regressions beyond tolerance "
          f"({len(fresh)} fresh rows, {len(base)} baseline rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
