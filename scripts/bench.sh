#!/usr/bin/env bash
# Runs every bench binary and collects their machine-readable "BENCHJSON"
# lines into BENCH_RESULTS.json, so the perf trajectory is tracked across
# PRs. Benches are built in Release (-O3 -DNDEBUG) — wall-clock numbers
# from debug builds are meaningless.
#
# Usage: scripts/bench.sh [output.json]
#   BENCH_BUILD_DIR  override the build directory (default: build-release)
#   BENCH_FILTER     only run binaries whose name matches this grep pattern
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

out="${1:-BENCH_RESULTS.json}"
build_dir="${BENCH_BUILD_DIR:-build-release}"
filter="${BENCH_FILTER:-.}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure + build ($build_dir, Release) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j "$jobs" >/dev/null

lines_file="$(mktemp)"
trap 'rm -f "$lines_file"' EXIT

status=0
for bin in "$build_dir"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "$name" | grep -Eq "$filter" || continue
  echo "== $name =="
  # Benches print their human tables to the terminal; only the BENCHJSON
  # lines are harvested. A failing bench fails the run (bench_datapath
  # exits nonzero when a zero-copy/integrity invariant breaks).
  # grep -o (not ^-anchored): google-benchmark's console colors can leave
  # escape codes at line starts.
  if ! "$bin" | tee /dev/stderr | grep -o 'BENCHJSON {.*}' | \
       sed 's/^BENCHJSON //' >> "$lines_file"; then
    echo "FAILED: $name" >&2
    status=1
  fi
done

{
  echo '{'
  echo "  \"generated_by\": \"scripts/bench.sh\","
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo '  "results": ['
  sed '$!s/$/,/; s/^/    /' "$lines_file"
  echo '  ]'
  echo '}'
} > "$out"

count="$(wc -l < "$lines_file")"
echo
echo "wrote $out ($count results)"
exit "$status"
