// Incremental checkpointing: a BLCR-style application writes successive
// checkpoint images; stdchk's FsCH compare-by-hash stores only the novel
// chunks of each version (copy-on-write chunk sharing), cutting storage
// and network traffic — the paper's §IV.C / §V.E result.
//
//   ./build/examples/incremental_checkpointing
#include <cstdio>

#include "core/cluster.h"
#include "workload/trace_generators.h"

using namespace stdchk;

int main() {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.stripe_width = 4;
  options.client.chunk_size = 256_KiB;
  options.client.incremental_fsch = true;  // enable compare-by-hash dedup
  StdchkCluster cluster(options);

  // A synthetic BLCR-like process image: most pages stable between
  // checkpoints, some dirtied, occasional heap growth.
  BlcrTraceOptions trace_options;
  trace_options.initial_pages = 4096;  // 16 MiB image
  trace_options.dirty_fraction = 0.08;
  trace_options.mean_insertions = 0.3;      // occasional heap growth
  trace_options.mean_odd_insertions = 0.1;  // rare odd-sized segment shifts
  auto trace = MakeBlcrLikeTrace(trace_options);

  std::printf("%-6s %10s %12s %12s %10s\n", "step", "image MB",
              "transferred", "dedup", "stored MB");

  std::uint64_t logical = 0;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    Bytes image = trace->Next();
    logical += image.size();

    auto session =
        cluster.client().CreateFile(CheckpointName{"blast", "n0", t});
    if (!session.ok()) return 1;
    if (!session.value()->Write(image).ok()) return 1;
    if (!session.value()->Close().ok()) return 1;
    const WriteStats& stats = session.value()->stats();

    std::uint64_t stored = 0;
    for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
      stored += cluster.benefactor(i).BytesUsed();
    }
    std::printf("T%-5llu %10.1f %9.1f MB %10.1f%% %10.1f\n",
                static_cast<unsigned long long>(t),
                static_cast<double>(image.size()) / (1 << 20),
                static_cast<double>(stats.bytes_transferred) / (1 << 20),
                100.0 *
                    static_cast<double>(stats.chunks_deduplicated) /
                    static_cast<double>(stats.chunks_total),
                static_cast<double>(stored) / (1 << 20));
  }

  const auto& catalog = cluster.manager().catalog();
  std::printf("\nlogical data written: %.1f MB\n",
              static_cast<double>(logical) / (1 << 20));
  std::printf("unique data stored:   %.1f MB (%.0f%% saved by FsCH)\n",
              static_cast<double>(catalog.TotalUniqueBytes()) / (1 << 20),
              100.0 * (1.0 - static_cast<double>(catalog.TotalUniqueBytes()) /
                                 static_cast<double>(logical)));

  // Every version remains individually readable — shared chunks are
  // refcounted, not aliased away.
  auto first = cluster.client().ReadFile(CheckpointName{"blast", "n0", 1});
  auto last = cluster.client().ReadFile(CheckpointName{"blast", "n0", 10});
  std::printf("restart from T1: %s, from T10: %s\n",
              first.ok() ? "ok" : first.status().ToString().c_str(),
              last.ok() ? "ok" : last.status().ToString().c_str());
  return first.ok() && last.ok() ? 0 : 1;
}
