// Automated, time-sensitive data management (paper §IV.D): three
// applications sharing one stdchk pool with different folder policies —
// no-intervention (debugging), automated-replace (normal runs), and
// automated-purge (scratch data with a deadline).
//
//   ./build/examples/policy_lifecycle
#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"
#include "fs/file_system.h"

using namespace stdchk;

namespace {

void PrintFolder(FileSystem& fs, const std::string& app) {
  auto entries = fs.ReadDir("/stdchk/" + app);
  std::printf("  /stdchk/%s:", app.c_str());
  if (!entries.ok() || entries.value().empty()) {
    std::printf(" (empty)\n");
    return;
  }
  for (const std::string& name : entries.value()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.chunk_size = 512_KiB;
  options.client.stripe_width = 3;
  StdchkCluster cluster(options);
  FileSystem fs(&cluster.client());

  // Debug runs keep everything; production replaces; scratch purges after
  // 60 seconds.
  FolderPolicy keep_all;  // kNoIntervention default
  FolderPolicy replace;
  replace.retention = RetentionPolicy::kAutomatedReplace;
  FolderPolicy purge;
  purge.retention = RetentionPolicy::kAutomatedPurge;
  purge.purge_age_us = 60'000'000;

  fs.SetPolicy("/stdchk/debug", keep_all);
  fs.SetPolicy("/stdchk/prod", replace);
  fs.SetPolicy("/stdchk/scratch", purge);

  Rng rng(5);
  auto checkpoint = [&](const std::string& app, std::uint64_t t) {
    std::string path = "/stdchk/" + app + "/" + app + ".n0.T" +
                       std::to_string(t);
    Fd fd = fs.Open(path, OpenMode::kWrite).value();
    (void)fs.Write(fd, rng.RandomBytes(2_MiB));
    (void)fs.Close(fd);
  };

  for (std::uint64_t t = 1; t <= 4; ++t) {
    checkpoint("debug", t);
    checkpoint("prod", t);
    checkpoint("scratch", t);
    // 30 simulated seconds pass between checkpoints.
    for (int i = 0; i < 30; ++i) cluster.Tick(1.0);
    std::printf("after T%llu (+30 s):\n", static_cast<unsigned long long>(t));
    PrintFolder(fs, "debug");
    PrintFolder(fs, "prod");
    PrintFolder(fs, "scratch");
  }

  // Two more minutes with no new checkpoints: scratch drains completely.
  for (int i = 0; i < 120; ++i) cluster.Tick(1.0);
  std::printf("after 2 idle minutes:\n");
  PrintFolder(fs, "debug");
  PrintFolder(fs, "prod");
  PrintFolder(fs, "scratch");

  // The application finished successfully: drop its folder entirely.
  (void)fs.RemoveAll("/stdchk/prod");
  cluster.Settle();
  std::printf("after prod completion + GC:\n");
  PrintFolder(fs, "prod");

  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    stored += cluster.benefactor(i).BytesUsed();
  }
  std::printf("scavenged space in use: %.1f MB (debug folder only)\n",
              static_cast<double>(stored) / (1 << 20));
  return 0;
}
