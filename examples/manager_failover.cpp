// Manager-failure drill: the two recovery paths of paper §IV.A working
// together — (1) benefactor-assisted recovery of a write whose chunk map
// never reached the manager, and (2) hot-standby failover from a metadata
// snapshot.
//
//   ./build/examples/manager_failover
#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"

using namespace stdchk;

int main() {
  ClusterOptions options;
  options.benefactor_count = 6;
  options.client.stripe_width = 3;
  options.client.chunk_size = 1_MiB;
  StdchkCluster cluster(options);
  Rng rng(8);

  // --- Normal operation, with periodic metadata snapshots (hot standby).
  Bytes t1 = rng.RandomBytes(8_MiB);
  (void)cluster.client().WriteFile(CheckpointName{"job", "n0", 1}, t1);
  Bytes standby_snapshot = cluster.manager().SaveSnapshot();
  std::printf("T1 committed; standby snapshot taken (%zu KB of metadata)\n",
              standby_snapshot.size() >> 10);

  // --- The manager dies mid-run, exactly when T2's writer wants to commit.
  auto session = cluster.client().CreateFile(CheckpointName{"job", "n0", 2});
  Bytes t2 = rng.RandomBytes(8_MiB);
  (void)session.value()->Write(t2);
  cluster.manager().Crash();
  auto outcome = session.value()->Close();
  std::printf("T2 close with manager down: %s\n",
              outcome.ok() && outcome.value() == CloseOutcome::kStashedForRecovery
                  ? "chunk map stashed on the write stripe"
                  : outcome.status().ToString().c_str());

  // --- Failover: promote the standby's snapshot.
  (void)cluster.manager().LoadSnapshot(standby_snapshot);
  std::printf("standby promoted from snapshot: manager is %s\n",
              cluster.manager().IsUp() ? "up" : "down");

  // Benefactors heartbeat and push their stashed chunk maps; once
  // two-thirds of the stripe concur, T2 commits.
  cluster.Tick(1.0);
  cluster.Tick(1.0);

  for (std::uint64_t t : {1ull, 2ull}) {
    auto data = cluster.client().ReadFile(CheckpointName{"job", "n0", t});
    bool match = data.ok() && (t == 1 ? data.value() == t1 : data.value() == t2);
    std::printf("T%llu after failover: %s\n",
                static_cast<unsigned long long>(t),
                match ? "readable, content verified"
                      : data.status().ToString().c_str());
  }

  // --- Life goes on.
  Bytes t3 = rng.RandomBytes(8_MiB);
  auto next = cluster.client().WriteFile(CheckpointName{"job", "n0", 3}, t3);
  std::printf("T3 after failover: %s\n",
              next.ok() ? "committed" : next.status().ToString().c_str());
  cluster.Settle();
  return 0;
}
