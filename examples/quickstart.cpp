// Quickstart: bring up an in-process stdchk pool, mount the file-system
// facade, write a checkpoint image through it, and read it back.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"
#include "fs/file_system.h"

using namespace stdchk;

int main() {
  // A desktop grid of 8 storage donors, 4 GiB scavenged space each.
  ClusterOptions options;
  options.benefactor_count = 8;
  options.client.stripe_width = 4;          // stripe chunks over 4 donors
  options.client.chunk_size = 1_MiB;
  options.client.protocol = WriteProtocol::kSlidingWindow;
  StdchkCluster cluster(options);

  // The traditional file-system interface, mounted under /stdchk.
  FileSystem fs(&cluster.client());

  // Checkpoint images follow the <app>.<node>.T<timestep> convention.
  const std::string path = "/stdchk/myapp/myapp.node0.T1";

  Rng rng(2024);
  Bytes checkpoint = rng.RandomBytes(32_MiB);

  Fd fd = fs.Open(path, OpenMode::kWrite).value();
  std::size_t written = 0;
  while (written < checkpoint.size()) {
    std::size_t n = std::min<std::size_t>(128_KiB, checkpoint.size() - written);
    auto result = fs.Write(fd, ByteSpan(checkpoint.data() + written, n));
    if (!result.ok()) {
      std::fprintf(stderr, "write failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    written += n;
  }
  // close() commits the chunk map atomically — only now is the image
  // visible to readers (session semantics).
  if (Status status = fs.Close(fd); !status.ok()) {
    std::fprintf(stderr, "close failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu MB across the pool\n", checkpoint.size() >> 20);

  // Where did the chunks land?
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    std::printf("  %s holds %zu chunks (%llu MB)\n",
                cluster.benefactor(i).host().c_str(),
                cluster.benefactor(i).ChunkCount(),
                static_cast<unsigned long long>(
                    cluster.benefactor(i).BytesUsed() >> 20));
  }

  // Restart path: read the latest image back.
  Fd rfd = fs.Open(path, OpenMode::kRead).value();
  Bytes restored(checkpoint.size());
  std::size_t offset = 0;
  while (offset < restored.size()) {
    auto n = fs.Read(rfd, MutableByteSpan(restored.data() + offset,
                                          restored.size() - offset));
    if (!n.ok() || n.value() == 0) break;
    offset += n.value();
  }
  (void)fs.Close(rfd);

  std::printf("read back %zu MB: %s\n", offset >> 20,
              restored == checkpoint ? "content verified" : "MISMATCH");
  return restored == checkpoint ? 0 : 1;
}
