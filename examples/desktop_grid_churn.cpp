// Desktop-grid churn scenario: an HPC application checkpoints every
// timestep while desktops join, get reclaimed by their owners, and return.
// Replication keeps every image readable; garbage collection reclaims
// space as the retention policy replaces old images.
//
//   ./build/examples/desktop_grid_churn
#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"

using namespace stdchk;

int main() {
  ClusterOptions options;
  options.benefactor_count = 10;
  options.client.stripe_width = 4;
  options.client.chunk_size = 1_MiB;
  options.client.semantics = WriteSemantics::kOptimistic;
  StdchkCluster cluster(options);

  // Availability policy: keep 2 replicas of everything in this folder,
  // and let new images replace old ones.
  FolderPolicy policy;
  policy.retention = RetentionPolicy::kAutomatedReplace;
  policy.keep_last = 2;
  policy.replication_target = 2;
  cluster.manager().SetFolderPolicy("sim", policy);

  Rng rng(7);
  Rng churn_rng(99);
  std::size_t reclaimed = 0, returned = 0;

  for (std::uint64_t t = 1; t <= 12; ++t) {
    // The application computes, then checkpoints ~24 MB.
    Bytes image = rng.RandomBytes(24_MiB);
    CheckpointName name{"sim", "node0", t};
    auto outcome = cluster.client().WriteFile(name, image);
    std::printf("T%-3llu write: %s\n", static_cast<unsigned long long>(t),
                outcome.ok() ? "committed" : outcome.status().ToString().c_str());

    // Desktop churn: each tick one random machine may be reclaimed by its
    // owner, and one previously reclaimed machine may come back.
    std::size_t victim = churn_rng.NextBelow(cluster.benefactor_count());
    if (cluster.benefactor(victim).online() && churn_rng.NextBool(0.5)) {
      cluster.benefactor(victim).Crash();
      ++reclaimed;
      std::printf("     owner reclaimed %s\n",
                  cluster.benefactor(victim).host().c_str());
    }
    std::size_t candidate = churn_rng.NextBelow(cluster.benefactor_count());
    if (!cluster.benefactor(candidate).online()) {
      (void)cluster.RestartBenefactor(candidate);
      ++returned;
      std::printf("     %s returned to the pool\n",
                  cluster.benefactor(candidate).host().c_str());
    }

    // Background machinery: heartbeats, expiry, replication repair,
    // retention, GC. (The BackgroundDriver does this from a thread in a
    // real deployment; here we pump deterministically.)
    for (int i = 0; i < 15; ++i) cluster.Tick(1.0);
  }

  // Bring everyone back and let the system settle.
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    if (!cluster.benefactor(i).online()) (void)cluster.RestartBenefactor(i);
  }
  cluster.Settle(256);

  auto versions = cluster.manager().ListVersions("sim").value();
  std::printf("\nafter churn (%zu reclaims, %zu returns):\n", reclaimed,
              returned);
  std::printf("  retained versions (policy keeps last 2): %zu\n",
              versions.size());
  for (const CheckpointName& name : versions) {
    auto data = cluster.client().ReadFile(name);
    std::printf("  %s: %s\n", name.ToString().c_str(),
                data.ok() ? "readable, restart possible"
                          : data.status().ToString().c_str());
  }

  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < cluster.benefactor_count(); ++i) {
    stored += cluster.benefactor(i).BytesUsed();
  }
  std::printf("  scavenged space in use: %llu MB (2 replicas x 2 images)\n",
              static_cast<unsigned long long>(stored >> 20));
  return 0;
}
